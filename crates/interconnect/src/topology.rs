//! Network topologies: parametric crossbars and hierarchical
//! crossbar-of-rings shapes. The paper's two configurations (Figure 2's
//! 4-cluster crossbar and 16-cluster hierarchy) are the [`Topology::crossbar4`]
//! and [`Topology::hier16`] presets of the general space; arbitrary shapes
//! come from the [`crate::topo`] spec layer (`xbar:8`, `ring:6x4`, ...).
//!
//! Route latencies are not hard-coded per shape: every route is a chain of
//! wire segments (one crossbar traversal plus zero or more ring hops) whose
//! per-class cycle counts derive from the `wires` crate's geometry anchor
//! via [`heterowire_wires::segment_latency`]. With the default segment
//! lengths (crossbar 1, ring hop 2) this reproduces the paper's §5.2
//! latency table exactly.

use std::borrow::Cow;

use heterowire_wires::{segment_latency, WireClass};

/// A network endpoint: one of the clusters or the centralized L1 D-cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Node {
    /// Cluster `i`.
    Cluster(usize),
    /// The centralized data cache / LSQ.
    Cache,
}

/// A directed link in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkId {
    /// Cluster `i`'s injection link into its crossbar.
    ClusterOut(usize),
    /// Cluster `i`'s delivery link from its crossbar.
    ClusterIn(usize),
    /// The cache's injection link (double width).
    CacheOut,
    /// The cache's delivery link (double width).
    CacheIn,
    /// Directed ring segment between adjacent crossbar hubs.
    Ring {
        /// Source quad.
        from: usize,
        /// Destination quad (adjacent on the ring).
        to: usize,
    },
}

impl LinkId {
    /// Short human-readable label, used for telemetry track names and
    /// utilization CSV rows. Borrowed for the fixed cache links so callers
    /// that cache the labels (telemetry does, once per recording) never pay
    /// per-event formatting.
    pub fn label(self) -> Cow<'static, str> {
        match self {
            LinkId::ClusterOut(c) => Cow::Owned(format!("c{c}.out")),
            LinkId::ClusterIn(c) => Cow::Owned(format!("c{c}.in")),
            LinkId::CacheOut => Cow::Borrowed("cache.out"),
            LinkId::CacheIn => Cow::Borrowed("cache.in"),
            LinkId::Ring { from, to } => Cow::Owned(format!("ring.{from}-{to}")),
        }
    }
}

/// The generating shape of a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// `clusters` clusters and the cache on a single crossbar.
    Crossbar { clusters: usize },
    /// `quads` crossbars of `per_quad` clusters each on a bidirectional
    /// ring, cache attached to quad 0's crossbar.
    HierRing { quads: usize, per_quad: usize },
}

/// The shape of the interconnect plus its segment geometry.
///
/// Figure 2(a) is [`Topology::crossbar4`], Figure 2(b) is
/// [`Topology::hier16`]; the general constructors ([`Topology::crossbar`],
/// [`Topology::hier_ring`]) and the spec parser
/// ([`crate::topo::TopologySpec`]) open the rest of the space. Equality is
/// structural, so a spec-built `ring:4x4` compares equal to the `hier16`
/// preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    shape: Shape,
    /// Crossbar traversal length in W-segment units (default 1).
    xbar_len: u32,
    /// Ring-hop length in W-segment units (default 2: a hop spans two
    /// crossbar-lengths). Pinned to the default for crossbars — the field
    /// is meaningless there and must not break structural equality.
    hop_len: u32,
}

/// A computed route: the links traversed and the end-to-end latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Directed links that must each grant a lane at injection time.
    pub links: Vec<LinkId>,
    /// Delivery latency in cycles for the given wire class.
    pub latency: u64,
    /// Energy hops: 1 for the crossbar traversal plus 1 per ring segment.
    pub hops: u32,
}

/// Cluster-capacity ceiling of the whole simulator stack. One constant,
/// one checker ([`Topology::check_capacity`]): the spec parser, the
/// `Topology` constructors, `Network::new`, and the processor's
/// `MAX_CLUSTERS` re-export are all fed from here, so an oversized
/// topology is refused with the same message everywhere. 64 is the
/// `ClusterMask` (u64) bound in `heterowire-core`; widening past it means
/// widening the mask first.
pub const MAX_SIM_CLUSTERS: usize = 64;

/// Most ring quads any supported topology has. Bounds the inline route
/// arrays via [`MAX_ROUTE_LINKS`]; 16 quads covers every headline wide
/// shape (`ring:16x4` = 64 clusters) without bloating the hot-path route
/// cache the way a worst-case 64-quad bound would.
pub const MAX_RING_QUADS: usize = 16;

/// Inline-route capacity of the network engines: source link + ring
/// segments + sink link, stored in fixed arrays on the hot path. Derived
/// from [`MAX_RING_QUADS`] (shortest paths take at most `quads / 2`
/// segments). Every `Topology` constructor validates
/// [`Topology::max_route_links`] against this bound through
/// [`Topology::check_capacity`] (and the spec parser turns the violation
/// into a [`crate::topo::TopoSpecError`]), so an oversized ring is a loud
/// construction-time error instead of a silent array overrun.
pub const MAX_ROUTE_LINKS: usize = 2 + MAX_RING_QUADS / 2;

/// A topology that exceeds the simulator's capacity bounds — the single
/// source of the refusal wording. The spec parser wraps this in
/// [`crate::topo::TopoSpecError::Capacity`] (CLI exit 2), the `Topology`
/// constructors and `Network::new` panic with its `Display` text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityError {
    /// A crossbar with fewer than 2 clusters.
    TooFewClusters(usize),
    /// A ring with fewer than 3 quads (the two directed segments between
    /// 2 quads would coincide).
    TooFewQuads(usize),
    /// A ring quad with zero clusters.
    EmptyQuad,
    /// More clusters than [`MAX_SIM_CLUSTERS`].
    TooManyClusters {
        /// Clusters the offending topology would have.
        clusters: usize,
    },
    /// A ring whose longest route exceeds [`MAX_ROUTE_LINKS`].
    RouteTooLong {
        /// Quads the offending ring would have.
        quads: usize,
        /// Links its longest route would need.
        needed: usize,
    },
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CapacityError::TooFewClusters(n) => {
                write!(f, "a crossbar needs at least 2 clusters, got {n}")
            }
            CapacityError::TooFewQuads(q) => write!(
                f,
                "a ring needs at least 3 quads, got {q} (the two directed segments \
                 between 2 quads would coincide; use xbar:<clusters> for small shapes)"
            ),
            CapacityError::EmptyQuad => write!(f, "a quad needs at least 1 cluster"),
            CapacityError::TooManyClusters { clusters } => write!(
                f,
                "{clusters} clusters, but the simulator supports at most \
                 {MAX_SIM_CLUSTERS} (the per-value cluster mask is 64-bit)"
            ),
            CapacityError::RouteTooLong { quads, needed } => write!(
                f,
                "a {quads}-quad ring routes up to {needed} links but the network's \
                 inline routes hold {MAX_ROUTE_LINKS}; rings support at most \
                 {MAX_RING_QUADS} quads"
            ),
        }
    }
}

impl std::error::Error for CapacityError {}

/// The one capacity checker behind every validation site: crossbar shape.
pub fn check_crossbar(clusters: usize) -> Result<(), CapacityError> {
    if clusters < 2 {
        return Err(CapacityError::TooFewClusters(clusters));
    }
    if clusters > MAX_SIM_CLUSTERS {
        return Err(CapacityError::TooManyClusters { clusters });
    }
    Ok(())
}

/// The one capacity checker behind every validation site: ring shape.
pub fn check_ring(quads: usize, per_quad: usize) -> Result<(), CapacityError> {
    if quads < 3 {
        return Err(CapacityError::TooFewQuads(quads));
    }
    if per_quad == 0 {
        return Err(CapacityError::EmptyQuad);
    }
    let needed = 2 + quads / 2;
    if needed > MAX_ROUTE_LINKS {
        return Err(CapacityError::RouteTooLong { quads, needed });
    }
    let clusters = quads * per_quad;
    if clusters > MAX_SIM_CLUSTERS {
        return Err(CapacityError::TooManyClusters { clusters });
    }
    Ok(())
}

/// An allocation-free [`Route`] with the link set stored inline — the
/// network's hot send path computes one of these per transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InlineRoute {
    links: [LinkId; MAX_ROUTE_LINKS],
    len: u8,
    /// Delivery latency in cycles for the given wire class.
    pub latency: u64,
    /// Energy hops: 1 for the crossbar traversal plus 1 per ring segment.
    pub hops: u32,
}

impl InlineRoute {
    /// The links traversed, in order.
    pub fn links(&self) -> &[LinkId] {
        &self.links[..self.len as usize]
    }
}

/// Default crossbar segment length (one W-segment).
pub const DEFAULT_XBAR_LEN: u32 = 1;
/// Default ring-hop segment length (two W-segments, paper §5.2).
pub const DEFAULT_HOP_LEN: u32 = 2;

impl Topology {
    /// A 4-cluster crossbar (the paper's main configuration).
    pub fn crossbar4() -> Self {
        Topology::crossbar(4)
    }

    /// The 16-cluster hierarchical configuration.
    pub fn hier16() -> Self {
        Topology::hier_ring(4, 4)
    }

    /// `clusters` clusters and the cache on a single crossbar
    /// (Figure 2(a); the paper uses 4 clusters).
    ///
    /// # Panics
    ///
    /// Panics when [`check_crossbar`] refuses the shape — fewer than 2
    /// clusters or more than [`MAX_SIM_CLUSTERS`] (spec-layer callers get
    /// a [`crate::topo::TopoSpecError`] instead).
    pub fn crossbar(clusters: usize) -> Self {
        if let Err(e) = check_crossbar(clusters) {
            panic!("{e}");
        }
        Topology {
            shape: Shape::Crossbar { clusters },
            xbar_len: DEFAULT_XBAR_LEN,
            hop_len: DEFAULT_HOP_LEN,
        }
    }

    /// `quads` crossbars of `per_quad` clusters each on a bidirectional
    /// ring, cache attached to quad 0's crossbar (Figure 2(b); 16 clusters
    /// = 4 quads of 4).
    ///
    /// # Panics
    ///
    /// Panics when [`check_ring`] refuses the shape — fewer than 3 quads
    /// (with 2 the two directed segments of each direction would
    /// coincide), zero clusters per quad, a ring whose longest route
    /// exceeds [`MAX_ROUTE_LINKS`] (more than [`MAX_RING_QUADS`] quads),
    /// or more than [`MAX_SIM_CLUSTERS`] clusters. Spec-layer callers get
    /// a [`crate::topo::TopoSpecError`] instead.
    pub fn hier_ring(quads: usize, per_quad: usize) -> Self {
        if let Err(e) = check_ring(quads, per_quad) {
            panic!("{e}");
        }
        Topology {
            shape: Shape::HierRing { quads, per_quad },
            xbar_len: DEFAULT_XBAR_LEN,
            hop_len: DEFAULT_HOP_LEN,
        }
    }

    /// Overrides the wire-segment lengths the latency derivation uses (the
    /// `@xbar<n>` / `@hop<n>` spec suffixes). On crossbars the hop length
    /// is pinned to [`DEFAULT_HOP_LEN`] so structural equality ignores it.
    ///
    /// # Panics
    ///
    /// Panics on a zero length.
    pub fn with_segment_lengths(mut self, xbar_len: u32, hop_len: u32) -> Self {
        assert!(xbar_len >= 1, "crossbar segment length must be at least 1");
        assert!(hop_len >= 1, "ring-hop segment length must be at least 1");
        self.xbar_len = xbar_len;
        self.hop_len = match self.shape {
            Shape::Crossbar { .. } => DEFAULT_HOP_LEN,
            Shape::HierRing { .. } => hop_len,
        };
        self
    }

    /// Crossbar traversal length in W-segment units.
    pub fn xbar_len(&self) -> u32 {
        self.xbar_len
    }

    /// Ring-hop length in W-segment units ([`DEFAULT_HOP_LEN`] on
    /// crossbars, where no hop exists).
    pub fn hop_len(&self) -> u32 {
        self.hop_len
    }

    /// True for hierarchical (crossbar-of-rings) shapes.
    pub fn is_ring(&self) -> bool {
        matches!(self.shape, Shape::HierRing { .. })
    }

    /// Number of ring quads (1 for a flat crossbar: everything hangs off
    /// the single hub).
    pub fn quads(&self) -> usize {
        match self.shape {
            Shape::Crossbar { .. } => 1,
            Shape::HierRing { quads, .. } => quads,
        }
    }

    /// Clusters per quad (all of them, for a flat crossbar).
    pub fn per_quad(&self) -> usize {
        match self.shape {
            Shape::Crossbar { clusters } => clusters,
            Shape::HierRing { per_quad, .. } => per_quad,
        }
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        match self.shape {
            Shape::Crossbar { clusters } => clusters,
            Shape::HierRing { quads, per_quad } => quads * per_quad,
        }
    }

    /// Quad of a cluster (0 for flat crossbars).
    pub fn quad_of(&self, cluster: usize) -> usize {
        match self.shape {
            Shape::Crossbar { .. } => 0,
            Shape::HierRing { per_quad, .. } => cluster / per_quad,
        }
    }

    /// The quad that hosts the centralized cache.
    pub const CACHE_QUAD: usize = 0;

    /// Re-runs the shared capacity checker on this topology's shape.
    /// Constructors already enforce it, so on any `Topology` built through
    /// them this is `Ok`; `Network::new` re-checks defensively so a future
    /// construction path cannot overrun the inline route arrays.
    pub fn check_capacity(&self) -> Result<(), CapacityError> {
        match self.shape {
            Shape::Crossbar { clusters } => check_crossbar(clusters),
            Shape::HierRing { quads, per_quad } => check_ring(quads, per_quad),
        }
    }

    /// The longest route this topology can produce, in links: source link
    /// plus shortest-path ring segments (at most `quads / 2`) plus sink
    /// link. Constructors validate this against [`MAX_ROUTE_LINKS`].
    pub fn max_route_links(&self) -> usize {
        let max_segments = match self.shape {
            Shape::Crossbar { .. } => 0,
            Shape::HierRing { quads, .. } => quads / 2,
        };
        2 + max_segments
    }

    /// The canonical compact spec string for this topology (`xbar:4`,
    /// `ring:6x4`, `ring:4x4@hop3`), parseable by
    /// [`crate::topo::TopologySpec`]; non-default segment lengths appear as
    /// suffixes.
    pub fn spec_string(&self) -> String {
        let mut s = match self.shape {
            Shape::Crossbar { clusters } => format!("xbar:{clusters}"),
            Shape::HierRing { quads, per_quad } => format!("ring:{quads}x{per_quad}"),
        };
        if self.is_ring() && self.hop_len != DEFAULT_HOP_LEN {
            s.push_str(&format!("@hop{}", self.hop_len));
        }
        if self.xbar_len != DEFAULT_XBAR_LEN {
            s.push_str(&format!("@xbar{}", self.xbar_len));
        }
        s
    }

    /// All directed links in this topology, in a stable order.
    pub fn all_links(&self) -> Vec<LinkId> {
        let mut links = Vec::new();
        for c in 0..self.clusters() {
            links.push(LinkId::ClusterOut(c));
            links.push(LinkId::ClusterIn(c));
        }
        links.push(LinkId::CacheOut);
        links.push(LinkId::CacheIn);
        if let Shape::HierRing { quads, .. } = self.shape {
            for q in 0..quads {
                links.push(LinkId::Ring {
                    from: q,
                    to: (q + 1) % quads,
                });
                links.push(LinkId::Ring {
                    from: q,
                    to: (q + quads - 1) % quads,
                });
            }
        }
        links
    }

    /// Index of `id` in [`Topology::all_links`] order, computed
    /// arithmetically so hot paths need no hash lookup. The network checks
    /// this against the enumeration at construction time.
    ///
    /// # Panics
    ///
    /// Panics on a ring link in a crossbar topology (no such link is ever
    /// declared).
    pub fn link_slot(&self, id: LinkId) -> usize {
        let n = self.clusters();
        match id {
            LinkId::ClusterOut(c) => 2 * c,
            LinkId::ClusterIn(c) => 2 * c + 1,
            LinkId::CacheOut => 2 * n,
            LinkId::CacheIn => 2 * n + 1,
            LinkId::Ring { from, to } => {
                let Shape::HierRing { quads, .. } = self.shape else {
                    panic!("crossbar topologies have no ring links");
                };
                let clockwise = to == (from + 1) % quads;
                2 * n + 2 + 2 * from + usize::from(!clockwise)
            }
        }
    }

    /// Computes the route from `src` to `dst` for a transfer on `class`
    /// wires without heap allocation. The latency is the per-class segment
    /// derivation ([`heterowire_wires::segment_latency`]) over one crossbar
    /// traversal of [`Topology::xbar_len`] plus [`Topology::hop_len`] per
    /// ring segment.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or a cluster index is out of range (route
    /// length cannot overflow: constructors bound it by
    /// [`MAX_ROUTE_LINKS`]).
    pub fn route_inline(&self, src: Node, dst: Node, class: WireClass) -> InlineRoute {
        assert!(src != dst, "no self-transfers on the network");
        let xbar = segment_latency(class, self.xbar_len);
        let ring = segment_latency(class, self.hop_len);

        let mut links = [LinkId::CacheOut; MAX_ROUTE_LINKS];
        let mut len = 0usize;
        let src_quad = match src {
            Node::Cluster(c) => {
                assert!(c < self.clusters(), "cluster {c} out of range");
                links[len] = LinkId::ClusterOut(c);
                self.quad_of(c)
            }
            Node::Cache => {
                links[len] = LinkId::CacheOut;
                Self::CACHE_QUAD
            }
        };
        len += 1;
        let dst_quad = match dst {
            Node::Cluster(c) => {
                assert!(c < self.clusters(), "cluster {c} out of range");
                self.quad_of(c)
            }
            Node::Cache => Self::CACHE_QUAD,
        };

        // Ring path between quads: shortest direction, clockwise on ties.
        let mut segments = 0u64;
        if let Shape::HierRing { quads, .. } = self.shape {
            if src_quad != dst_quad {
                let cw = (dst_quad + quads - src_quad) % quads;
                let ccw = (src_quad + quads - dst_quad) % quads;
                let step = if cw <= ccw { 1 } else { quads - 1 };
                let mut q = src_quad;
                while q != dst_quad {
                    let n = (q + step) % quads;
                    links[len] = LinkId::Ring { from: q, to: n };
                    len += 1;
                    segments += 1;
                    q = n;
                }
            }
        }
        links[len] = match dst {
            Node::Cluster(c) => LinkId::ClusterIn(c),
            Node::Cache => LinkId::CacheIn,
        };
        len += 1;
        InlineRoute {
            links,
            len: len as u8,
            latency: xbar + ring * segments,
            hops: 1 + segments as u32,
        }
    }

    /// Computes the route from `src` to `dst` for a transfer on `class`
    /// wires (allocating convenience form of [`Topology::route_inline`]).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or a cluster index is out of range.
    pub fn route(&self, src: Node, dst: Node, class: WireClass) -> Route {
        let r = self.route_inline(src, dst, class);
        Route {
            links: r.links().to_vec(),
            latency: r.latency,
            hops: r.hops,
        }
    }

    /// Cluster nearest to the cache (steering gives loads affinity to it).
    /// For the crossbar every cluster is equidistant; quad-0 clusters win in
    /// the hierarchical topology.
    pub fn cache_adjacent(&self, cluster: usize) -> bool {
        self.quad_of(cluster) == Self::CACHE_QUAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_latencies_match_table2() {
        let t = Topology::crossbar4();
        for (class, lat) in [(WireClass::Pw, 3), (WireClass::B, 2), (WireClass::L, 1)] {
            let r = t.route(Node::Cluster(0), Node::Cluster(2), class);
            assert_eq!(r.latency, lat, "{class}");
            assert_eq!(r.hops, 1);
            assert_eq!(r.links, vec![LinkId::ClusterOut(0), LinkId::ClusterIn(2)]);
        }
    }

    #[test]
    fn cache_routes_use_cache_links() {
        let t = Topology::crossbar4();
        let r = t.route(Node::Cluster(1), Node::Cache, WireClass::B);
        assert_eq!(r.links, vec![LinkId::ClusterOut(1), LinkId::CacheIn]);
        let r = t.route(Node::Cache, Node::Cluster(3), WireClass::B);
        assert_eq!(r.links, vec![LinkId::CacheOut, LinkId::ClusterIn(3)]);
    }

    #[test]
    fn hier_ring_same_quad_is_one_crossbar() {
        let t = Topology::hier16();
        let r = t.route(Node::Cluster(4), Node::Cluster(7), WireClass::B);
        assert_eq!(r.latency, 2);
        assert_eq!(r.hops, 1);
    }

    #[test]
    fn hier_ring_adjacent_quad_adds_one_hop() {
        let t = Topology::hier16();
        // Quad 0 -> quad 1.
        let r = t.route(Node::Cluster(0), Node::Cluster(4), WireClass::B);
        assert_eq!(r.latency, 2 + 4);
        assert_eq!(r.hops, 2);
        assert!(r.links.contains(&LinkId::Ring { from: 0, to: 1 }));
    }

    #[test]
    fn hier_ring_opposite_quad_is_two_hops() {
        let t = Topology::hier16();
        // Quad 0 -> quad 2: two hops either way.
        let r = t.route(Node::Cluster(0), Node::Cluster(8), WireClass::L);
        assert_eq!(r.latency, 1 + 2 * 2);
        assert_eq!(r.hops, 3);
    }

    #[test]
    fn hier_ring_picks_short_direction() {
        let t = Topology::hier16();
        // Quad 3 -> quad 0 should go 3->0 directly (one hop ccw... the ring
        // is bidirectional so 3->0 clockwise is 1 hop).
        let r = t.route(Node::Cluster(12), Node::Cache, WireClass::B);
        assert_eq!(r.hops, 2);
        assert!(r.links.contains(&LinkId::Ring { from: 3, to: 0 }));
    }

    #[test]
    fn cache_is_adjacent_to_quad0_only() {
        let t = Topology::hier16();
        assert!(t.cache_adjacent(2));
        assert!(!t.cache_adjacent(5));
        let t4 = Topology::crossbar4();
        assert!(t4.cache_adjacent(3));
    }

    #[test]
    fn all_links_enumerates_everything_once() {
        let t = Topology::hier16();
        let links = t.all_links();
        let unique: std::collections::HashSet<_> = links.iter().collect();
        assert_eq!(links.len(), unique.len());
        // 16 clusters * 2 + cache 2 + 8 ring segments.
        assert_eq!(links.len(), 16 * 2 + 2 + 8);
    }

    #[test]
    fn link_slot_matches_enumeration_order() {
        for t in [
            Topology::crossbar4(),
            Topology::hier16(),
            Topology::crossbar(2),
            Topology::crossbar(8),
            Topology::hier_ring(3, 6),
            Topology::hier_ring(5, 2),
            Topology::hier_ring(8, 4),
        ] {
            for (i, &id) in t.all_links().iter().enumerate() {
                assert_eq!(t.link_slot(id), i, "{id:?}");
            }
            let links = t.all_links();
            let unique: std::collections::HashSet<_> = links.iter().collect();
            assert_eq!(links.len(), unique.len(), "{t:?} duplicates a link");
        }
    }

    #[test]
    fn generated_ring_generalizes_quads_and_latency() {
        // 6 quads of 2 clusters: 12 clusters, up to 3 ring segments.
        let t = Topology::hier_ring(6, 2);
        assert_eq!(t.clusters(), 12);
        assert_eq!(t.quad_of(5), 2);
        assert_eq!(t.max_route_links(), 5);
        // Quad 0 -> quad 3 is opposite: 3 hops.
        let r = t.route(Node::Cluster(0), Node::Cluster(6), WireClass::B);
        assert_eq!(r.hops, 4);
        assert_eq!(r.latency, 2 + 3 * 4);
        // Odd ring: no tie, the short way round wins.
        let t5 = Topology::hier_ring(5, 2);
        let r = t5.route(Node::Cluster(0), Node::Cluster(6), WireClass::L);
        assert_eq!(r.hops, 3); // quad 0 -> 3 counter-clockwise (2 segments)
        assert!(r.links.contains(&LinkId::Ring { from: 4, to: 3 }));
    }

    #[test]
    fn segment_length_overrides_rescale_latency() {
        // hier16 with 3-length hops: B hop becomes ceil(0.8*2.5*3) = 6.
        let t = Topology::hier_ring(4, 4).with_segment_lengths(1, 3);
        let r = t.route(Node::Cluster(0), Node::Cluster(4), WireClass::B);
        assert_eq!(r.latency, 2 + 6);
        // Double-length crossbar: B traversal costs the ring-hop 4.
        let t = Topology::crossbar(4).with_segment_lengths(2, 1);
        let r = t.route(Node::Cluster(0), Node::Cluster(1), WireClass::B);
        assert_eq!(r.latency, 4);
        // Crossbars pin the (unused) hop length for structural equality.
        assert_eq!(
            Topology::crossbar(4).with_segment_lengths(1, 5),
            Topology::crossbar4()
        );
    }

    #[test]
    fn spec_strings_are_canonical() {
        assert_eq!(Topology::crossbar4().spec_string(), "xbar:4");
        assert_eq!(Topology::hier16().spec_string(), "ring:4x4");
        assert_eq!(
            Topology::hier_ring(6, 2)
                .with_segment_lengths(2, 3)
                .spec_string(),
            "ring:6x2@hop3@xbar2"
        );
    }

    #[test]
    fn labels_borrow_where_possible() {
        assert_eq!(LinkId::CacheOut.label(), "cache.out");
        assert!(matches!(LinkId::CacheIn.label(), Cow::Borrowed(_)));
        assert_eq!(LinkId::ClusterOut(3).label(), "c3.out");
        assert_eq!(LinkId::Ring { from: 1, to: 2 }.label(), "ring.1-2");
    }

    #[test]
    #[should_panic(expected = "at least 3 quads")]
    fn two_quad_ring_is_rejected() {
        let _ = Topology::hier_ring(2, 4);
    }

    #[test]
    #[should_panic(expected = "inline")]
    fn oversized_ring_is_rejected_at_construction() {
        // 20 quads need 2 + 10 = 12 links; the engines hold 10.
        let _ = Topology::hier_ring(20, 2);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn over_cap_crossbar_is_rejected_at_construction() {
        let _ = Topology::crossbar(MAX_SIM_CLUSTERS + 1);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn over_cap_ring_is_rejected_at_construction() {
        // 13 quads fit the route bound, but 13 * 5 = 65 clusters exceed
        // the simulator-wide cap.
        let _ = Topology::hier_ring(13, 5);
    }

    #[test]
    fn headline_wide_shapes_construct() {
        let x = Topology::crossbar(MAX_SIM_CLUSTERS);
        assert_eq!(x.clusters(), 64);
        assert!(x.check_capacity().is_ok());
        let r = Topology::hier_ring(MAX_RING_QUADS, 4);
        assert_eq!(r.clusters(), 64);
        assert_eq!(r.max_route_links(), MAX_ROUTE_LINKS);
        assert!(r.check_capacity().is_ok());
    }

    #[test]
    #[should_panic(expected = "at least 2 clusters")]
    fn degenerate_crossbar_is_rejected() {
        let _ = Topology::crossbar(1);
    }

    #[test]
    #[should_panic(expected = "self-transfers")]
    fn self_route_panics() {
        let _ = Topology::crossbar4().route(Node::Cluster(0), Node::Cluster(0), WireClass::B);
    }
}
