#![warn(missing_docs)]
//! # heterowire-interconnect
//!
//! The heterogeneous inter-cluster interconnect of the `heterowire`
//! processor: network topologies ([`topology`] — parametric crossbars and
//! hierarchical crossbar-of-rings shapes, with Figure 2's 4-cluster
//! crossbar and 16-cluster hierarchy as presets), the spec layer that
//! parses, validates and generates them from compact strings or key=value
//! files ([`topo`]), typed
//! messages with wire-class eligibility ([`message`]), the indexed
//! arbitration/buffering/energy engine ([`network`]) with its retained
//! scan-based equivalence reference ([`mod@reference`]), the dynamic
//! wire-selection policy ([`policy`]) implementing the paper's three
//! steering criteria plus the L-Wire fast paths, and deterministic
//! wire-fault injection with NACK/retransmission and lane retirement
//! ([`fault`]).
//!
//! ```
//! use heterowire_interconnect::{
//!     message::{MessageKind, Transfer},
//!     network::{NetConfig, Network},
//!     topology::{Node, Topology},
//! };
//! use heterowire_wires::{LinkComposition, WireClass, WirePlane};
//!
//! // Model VII of Table 3: 144 B-Wires + 36 L-Wires per cluster link.
//! let link = LinkComposition::new(vec![
//!     WirePlane::new(WireClass::B, 144),
//!     WirePlane::new(WireClass::L, 36),
//! ])
//! .unwrap();
//! let mut net = Network::new(NetConfig::new(Topology::crossbar4(), link));
//! net.send(
//!     Transfer {
//!         src: Node::Cluster(0),
//!         dst: Node::Cluster(1),
//!         class: WireClass::L,
//!         kind: MessageKind::NarrowValue,
//!     },
//!     0,
//! );
//! net.tick(1);
//! let mut delivered = Vec::new();
//! net.take_delivered_into(2, &mut delivered);
//! assert_eq!(delivered.len(), 1); // L-Wires: 1-cycle crossbar
//! ```

pub mod fault;
pub mod fvc;
pub mod message;
pub mod network;
pub mod policy;
pub mod reference;
pub mod topo;
pub mod topology;

pub use fault::{
    FaultModel, FaultSpec, FaultSpecError, InjectedFaults, NullFaultModel, DEFAULT_FAULT_SEED,
    DEFAULT_RETRY_LIMIT,
};
pub use fvc::FrequentValueTable;
pub use message::{MessageKind, Transfer};
pub use network::{NetConfig, NetStats, Network, TransferId};
pub use policy::{AvailablePlanes, LoadBalancer, TransferHints, WirePolicy};
pub use reference::ReferenceNetwork;
pub use topo::{TopoSpecError, TopologyPreset, TopologySpec};
pub use topology::{
    check_crossbar, check_ring, CapacityError, LinkId, Node, Route, Topology, MAX_RING_QUADS,
    MAX_ROUTE_LINKS, MAX_SIM_CLUSTERS,
};
