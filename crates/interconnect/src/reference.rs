//! The retained scan-based network engine, kept as the equivalence
//! reference for the indexed [`Network`](crate::network::Network).
//!
//! This is the pre-rework implementation verbatim: a flat `pending` Vec
//! rescanned in full on every tick and a flat `in_flight` Vec rescanned
//! (and the due subset sorted) on every delivery drain. It is deliberately
//! simple — the arbitration semantics are readable straight off the scan
//! loop — and deliberately slow, so it must never be used by the
//! simulator itself. The randomized differential tests in
//! `tests/differential.rs` drive it and the production network with
//! identical transfer streams and assert bit-identical [`NetStats`],
//! delivery sets and probe event sequences.

use heterowire_telemetry::{NullProbe, Probe};
use heterowire_wires::WireClass;

use crate::fault::{FaultModel, NullFaultModel};
use crate::message::Transfer;
use crate::network::{class_index, NetConfig, NetStats, TransferId};
use crate::topology::MAX_ROUTE_LINKS;

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: TransferId,
    transfer: Transfer,
    /// Link slots of the route, stored inline (no per-transfer heap).
    links: [u16; MAX_ROUTE_LINKS],
    nlinks: u8,
    latency: u64,
    hops: u32,
    enqueued: u64,
    /// Prior corrupted deliveries of this transfer (0 = original send).
    attempt: u32,
    /// First attempt's scheduled delivery cycle (retry-delay accounting;
    /// 0 while `attempt == 0`).
    first_deliver: u64,
}

impl Pending {
    fn links(&self) -> &[u16] {
        &self.links[..self.nlinks as usize]
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: TransferId,
    transfer: Transfer,
    deliver_at: u64,
    /// Route energy hops (the corruption draw's exposure term).
    hops: u32,
    /// Prior corrupted deliveries of this transfer.
    attempt: u32,
    /// First attempt's scheduled delivery cycle.
    first_deliver: u64,
}

/// The scan-based reference network: same public surface as
/// [`Network`](crate::network::Network) (send / tick / take_delivered /
/// next-event accessors), O(pending) per tick and O(in-flight) per drain.
#[derive(Debug, Clone)]
pub struct ReferenceNetwork<F: FaultModel = NullFaultModel> {
    config: NetConfig,
    /// Lane capacity per link per wire class.
    caps: Vec<[u32; 4]>,
    /// Lanes used in the current cycle per link per class.
    used: Vec<[u32; 4]>,
    pending: Vec<Pending>,
    in_flight: Vec<InFlight>,
    next_id: u64,
    last_tick: Option<u64>,
    stats: NetStats,
    faults: F,
}

impl ReferenceNetwork {
    /// Builds the fault-free reference network for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster link composition is empty.
    pub fn new(config: NetConfig) -> Self {
        ReferenceNetwork::with_faults(config, NullFaultModel)
    }
}

impl<F: FaultModel> ReferenceNetwork<F> {
    /// Builds the reference network with a fault injector (the scan-based
    /// mirror of `Network::with_faults`; the differential tests drive both
    /// with the same injector and assert bit-identical behaviour).
    ///
    /// # Panics
    ///
    /// Panics if the cluster link composition is empty.
    pub fn with_faults(config: NetConfig, faults: F) -> Self {
        assert!(
            !config.cluster_link.is_empty(),
            "links need at least one wire plane"
        );
        let link_ids = config.topology.all_links();
        let cache_link = config.cluster_link.widened(2);
        let mut caps = Vec::with_capacity(link_ids.len());
        for &id in &link_ids {
            let comp = match id {
                crate::topology::LinkId::CacheIn | crate::topology::LinkId::CacheOut => &cache_link,
                _ => &config.cluster_link,
            };
            let mut lanes = [0u32; 4];
            for (ci, &c) in WireClass::ALL.iter().enumerate() {
                lanes[ci] = comp.lanes(c);
            }
            caps.push(lanes);
        }
        let used = vec![[0; 4]; link_ids.len()];
        ReferenceNetwork {
            config,
            caps,
            used,
            pending: Vec::new(),
            in_flight: Vec::new(),
            next_id: 0,
            last_tick: None,
            stats: NetStats::default(),
            faults,
        }
    }

    /// True if the link composition offers any lanes of `class`.
    pub fn has_class(&self, class: WireClass) -> bool {
        self.config.cluster_link.lanes(class) > 0
    }

    /// Enqueues a transfer at `cycle` (see `Network::send`).
    ///
    /// # Panics
    ///
    /// Panics if the message kind is not allowed on the chosen wire class
    /// or the network has no lanes of that class.
    pub fn send(&mut self, transfer: Transfer, cycle: u64) -> TransferId {
        self.send_probed(transfer, cycle, &mut NullProbe)
    }

    /// [`ReferenceNetwork::send`] with telemetry.
    pub fn send_probed<P: Probe>(
        &mut self,
        transfer: Transfer,
        cycle: u64,
        probe: &mut P,
    ) -> TransferId {
        assert!(
            transfer.kind.allowed_on(transfer.class),
            "{:?} cannot ride {} wires",
            transfer.kind,
            transfer.class
        );
        assert!(
            self.has_class(transfer.class),
            "network has no {} plane",
            transfer.class
        );
        let route = self
            .config
            .topology
            .route_inline(transfer.src, transfer.dst, transfer.class);
        let scale = if self.config.transmission_line_l && transfer.class == WireClass::L {
            1.0
        } else {
            self.config.latency_scale
        };
        let latency = ((route.latency as f64) * scale).round() as u64
            + transfer.kind.serialization_cycles(transfer.class);
        let id = TransferId(self.next_id);
        self.next_id += 1;
        self.stats.transfers[class_index(transfer.class)] += 1;
        let mut links = [0u16; MAX_ROUTE_LINKS];
        for (slot, &l) in links.iter_mut().zip(route.links()) {
            *slot = self.config.topology.link_slot(l) as u16;
        }
        self.pending.push(Pending {
            id,
            transfer,
            links,
            nlinks: route.links().len() as u8,
            latency: latency.max(1),
            hops: route.hops,
            enqueued: cycle,
            attempt: 0,
            first_deliver: 0,
        });
        if P::ENABLED {
            probe.enqueue(cycle, id.0, transfer.class);
        }
        id
    }

    /// Arbitrates lanes for `cycle` by rescanning the whole pending set
    /// oldest first (see `Network::tick`).
    ///
    /// # Panics
    ///
    /// Panics if `cycle` moves backwards.
    pub fn tick(&mut self, cycle: u64) {
        self.tick_probed(cycle, &mut NullProbe)
    }

    /// [`ReferenceNetwork::tick`] with telemetry.
    pub fn tick_probed<P: Probe>(&mut self, cycle: u64, probe: &mut P) {
        if let Some(last) = self.last_tick {
            assert!(cycle > last, "network ticked backwards ({last} -> {cycle})");
        }
        self.last_tick = Some(cycle);
        for u in &mut self.used {
            *u = [0; 4];
        }
        // Single ordered pass compacting survivors in place (oldest-first
        // arbitration order is preserved; no per-element shifting).
        let mut kept = 0;
        for i in 0..self.pending.len() {
            let p = self.pending[i];
            let ci = class_index(p.transfer.class);
            // A transfer sent this cycle is eligible next cycle (send
            // buffers add one cycle of wire scheduling).
            let departs = p.enqueued < cycle
                && p.links()
                    .iter()
                    .all(|&l| self.used[l as usize][ci] < self.caps[l as usize][ci]);
            if departs {
                for &l in p.links() {
                    self.used[l as usize][ci] += 1;
                }
                self.stats.queue_cycles += cycle - p.enqueued - 1;
                let bits = p.transfer.kind.bits() as u64 * p.hops as u64;
                self.stats.bit_hops[ci] += bits;
                let mut unit = p.transfer.class.params().relative_dynamic;
                if self.config.transmission_line_l && p.transfer.class == WireClass::L {
                    unit /= 3.0; // Chang et al.: 3x energy reduction
                }
                self.stats.dynamic_energy += bits as f64 * unit;
                if P::ENABLED {
                    probe.depart(cycle, p.id.0, p.transfer.class, cycle - p.enqueued - 1);
                    for &l in p.links() {
                        probe.link_busy(cycle, l as usize, p.transfer.class);
                    }
                }
                let deliver_at = cycle + p.latency;
                self.in_flight.push(InFlight {
                    id: p.id,
                    transfer: p.transfer,
                    deliver_at,
                    hops: p.hops,
                    attempt: p.attempt,
                    // The first departure pins the baseline delivery cycle
                    // the retry-delay metric is measured against.
                    first_deliver: if p.attempt == 0 {
                        deliver_at
                    } else {
                        p.first_deliver
                    },
                });
            } else {
                self.pending[kept] = p;
                kept += 1;
            }
        }
        self.pending.truncate(kept);
    }

    /// Removes all transfers delivered at or before `cycle` into `out`
    /// (cleared first, then sorted by id).
    pub fn take_delivered_into(&mut self, cycle: u64, out: &mut Vec<(TransferId, Transfer)>) {
        self.take_delivered_into_probed(cycle, out, &mut NullProbe)
    }

    /// [`ReferenceNetwork::take_delivered_into`] with telemetry.
    pub fn take_delivered_into_probed<P: Probe>(
        &mut self,
        cycle: u64,
        out: &mut Vec<(TransferId, Transfer)>,
        probe: &mut P,
    ) {
        out.clear();
        let mut kept = 0;
        // Push order is departure order, so due entries are visited in
        // exactly the order the indexed engine drains (dseq) — corrupted
        // transfers re-enter `pending` in the same order on both engines.
        for i in 0..self.in_flight.len() {
            let f = self.in_flight[i];
            if f.deliver_at <= cycle {
                if F::ENABLED
                    && self.faults.corrupts(
                        f.id.0,
                        f.attempt,
                        f.transfer.class,
                        f.transfer.kind.bits(),
                        f.hops,
                    )
                {
                    self.requeue(f, probe);
                    continue;
                }
                self.stats.delivered += 1;
                if F::ENABLED && f.attempt > 0 {
                    self.stats.retry_cycles += f.deliver_at - f.first_deliver;
                }
                if P::ENABLED {
                    // `deliver_at`, not `cycle`: the kernel may have
                    // skipped idle cycles past the actual delivery time.
                    probe.deliver(f.deliver_at, f.id.0, f.transfer.class);
                }
                out.push((f.id, f.transfer));
            } else {
                self.in_flight[kept] = f;
                kept += 1;
            }
        }
        self.in_flight.truncate(kept);
        out.sort_unstable_by_key(|(id, _)| *id);
    }

    /// The latency-scaled route latency `Network` caches per (src, dst,
    /// class), recomputed on demand (no route table here).
    fn scaled_base_latency(
        &self,
        src: crate::topology::Node,
        dst: crate::topology::Node,
        class: WireClass,
    ) -> u64 {
        let route = self.config.topology.route_inline(src, dst, class);
        let scale = if self.config.transmission_line_l && class == WireClass::L {
            1.0
        } else {
            self.config.latency_scale
        };
        ((route.latency as f64) * scale).round() as u64
    }

    /// NACK + retransmission, mirroring `Network::requeue` exactly: the
    /// NACK rides the reverse route on the failed class, the retry
    /// re-enters `pending` when it lands, and after the retry limit the
    /// transfer escalates to the B plane.
    fn requeue<P: Probe>(&mut self, f: InFlight, probe: &mut P) {
        self.stats.faults_detected += 1;
        if P::ENABLED {
            probe.fault_detected(f.deliver_at, f.id.0, f.transfer.class, f.attempt);
        }
        let nack = self
            .scaled_base_latency(f.transfer.dst, f.transfer.src, f.transfer.class)
            .max(1);
        let attempt = f.attempt + 1;
        let mut transfer = f.transfer;
        if attempt >= self.faults.retry_limit()
            && transfer.class != WireClass::B
            && self.has_class(WireClass::B)
            && transfer.kind.allowed_on(WireClass::B)
        {
            transfer.class = WireClass::B;
            self.stats.escalations += 1;
        }
        let route = self
            .config
            .topology
            .route_inline(transfer.src, transfer.dst, transfer.class);
        let latency = (self.scaled_base_latency(transfer.src, transfer.dst, transfer.class)
            + transfer.kind.serialization_cycles(transfer.class))
        .max(1);
        let mut links = [0u16; MAX_ROUTE_LINKS];
        for (slot, &l) in links.iter_mut().zip(route.links()) {
            *slot = self.config.topology.link_slot(l) as u16;
        }
        self.pending.push(Pending {
            id: f.id,
            transfer,
            links,
            nlinks: route.links().len() as u8,
            latency,
            hops: route.hops,
            enqueued: f.deliver_at + nack,
            attempt,
            first_deliver: f.first_deliver,
        });
        self.stats.retransmits += 1;
        if P::ENABLED {
            probe.retransmit(f.deliver_at + nack, f.id.0, transfer.class, attempt);
        }
    }

    /// The earliest future cycle at which the network can change state
    /// (see `Network::next_event_cycle`).
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        if !self.pending.is_empty() {
            return Some(now + 1);
        }
        self.in_flight
            .iter()
            .map(|f| f.deliver_at)
            .min()
            .map(|d| d.max(now + 1))
    }

    /// Transfers still queued or in flight.
    pub fn inflight_len(&self) -> usize {
        self.pending.len() + self.in_flight.len()
    }

    /// Transfers buffered awaiting lane arbitration (not yet departed).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The pending transfer next in arbitration order, as `(id, class,
    /// enqueued cycle, attempt)` — mirror of `Network::oldest_pending`.
    pub fn oldest_pending(&self) -> Option<(TransferId, WireClass, u64, u32)> {
        self.pending
            .first()
            .map(|p| (p.id, p.transfer.class, p.enqueued, p.attempt))
    }

    /// Statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}
