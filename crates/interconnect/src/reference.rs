//! The retained scan-based network engine, kept as the equivalence
//! reference for the indexed [`Network`](crate::network::Network).
//!
//! This is the pre-rework implementation verbatim: a flat `pending` Vec
//! rescanned in full on every tick and a flat `in_flight` Vec rescanned
//! (and the due subset sorted) on every delivery drain. It is deliberately
//! simple — the arbitration semantics are readable straight off the scan
//! loop — and deliberately slow, so it must never be used by the
//! simulator itself. The randomized differential tests in
//! `tests/differential.rs` drive it and the production network with
//! identical transfer streams and assert bit-identical [`NetStats`],
//! delivery sets and probe event sequences.

use heterowire_telemetry::{NullProbe, Probe};
use heterowire_wires::WireClass;

use crate::message::Transfer;
use crate::network::{class_index, NetConfig, NetStats, TransferId};
use crate::topology::MAX_ROUTE_LINKS;

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: TransferId,
    transfer: Transfer,
    /// Link slots of the route, stored inline (no per-transfer heap).
    links: [u16; MAX_ROUTE_LINKS],
    nlinks: u8,
    latency: u64,
    hops: u32,
    enqueued: u64,
}

impl Pending {
    fn links(&self) -> &[u16] {
        &self.links[..self.nlinks as usize]
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: TransferId,
    transfer: Transfer,
    deliver_at: u64,
}

/// The scan-based reference network: same public surface as
/// [`Network`](crate::network::Network) (send / tick / take_delivered /
/// next-event accessors), O(pending) per tick and O(in-flight) per drain.
#[derive(Debug, Clone)]
pub struct ReferenceNetwork {
    config: NetConfig,
    /// Lane capacity per link per wire class.
    caps: Vec<[u32; 4]>,
    /// Lanes used in the current cycle per link per class.
    used: Vec<[u32; 4]>,
    pending: Vec<Pending>,
    in_flight: Vec<InFlight>,
    next_id: u64,
    last_tick: Option<u64>,
    stats: NetStats,
}

impl ReferenceNetwork {
    /// Builds the reference network for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster link composition is empty.
    pub fn new(config: NetConfig) -> Self {
        assert!(
            !config.cluster_link.is_empty(),
            "links need at least one wire plane"
        );
        let link_ids = config.topology.all_links();
        let cache_link = config.cluster_link.widened(2);
        let mut caps = Vec::with_capacity(link_ids.len());
        for &id in &link_ids {
            let comp = match id {
                crate::topology::LinkId::CacheIn | crate::topology::LinkId::CacheOut => &cache_link,
                _ => &config.cluster_link,
            };
            let mut lanes = [0u32; 4];
            for (ci, &c) in WireClass::ALL.iter().enumerate() {
                lanes[ci] = comp.lanes(c);
            }
            caps.push(lanes);
        }
        let used = vec![[0; 4]; link_ids.len()];
        ReferenceNetwork {
            config,
            caps,
            used,
            pending: Vec::new(),
            in_flight: Vec::new(),
            next_id: 0,
            last_tick: None,
            stats: NetStats::default(),
        }
    }

    /// True if the link composition offers any lanes of `class`.
    pub fn has_class(&self, class: WireClass) -> bool {
        self.config.cluster_link.lanes(class) > 0
    }

    /// Enqueues a transfer at `cycle` (see `Network::send`).
    ///
    /// # Panics
    ///
    /// Panics if the message kind is not allowed on the chosen wire class
    /// or the network has no lanes of that class.
    pub fn send(&mut self, transfer: Transfer, cycle: u64) -> TransferId {
        self.send_probed(transfer, cycle, &mut NullProbe)
    }

    /// [`ReferenceNetwork::send`] with telemetry.
    pub fn send_probed<P: Probe>(
        &mut self,
        transfer: Transfer,
        cycle: u64,
        probe: &mut P,
    ) -> TransferId {
        assert!(
            transfer.kind.allowed_on(transfer.class),
            "{:?} cannot ride {} wires",
            transfer.kind,
            transfer.class
        );
        assert!(
            self.has_class(transfer.class),
            "network has no {} plane",
            transfer.class
        );
        let route = self
            .config
            .topology
            .route_inline(transfer.src, transfer.dst, transfer.class);
        let scale = if self.config.transmission_line_l && transfer.class == WireClass::L {
            1.0
        } else {
            self.config.latency_scale
        };
        let latency = ((route.latency as f64) * scale).round() as u64
            + transfer.kind.serialization_cycles(transfer.class);
        let id = TransferId(self.next_id);
        self.next_id += 1;
        self.stats.transfers[class_index(transfer.class)] += 1;
        let mut links = [0u16; MAX_ROUTE_LINKS];
        for (slot, &l) in links.iter_mut().zip(route.links()) {
            *slot = self.config.topology.link_slot(l) as u16;
        }
        self.pending.push(Pending {
            id,
            transfer,
            links,
            nlinks: route.links().len() as u8,
            latency: latency.max(1),
            hops: route.hops,
            enqueued: cycle,
        });
        if P::ENABLED {
            probe.enqueue(cycle, id.0, transfer.class);
        }
        id
    }

    /// Arbitrates lanes for `cycle` by rescanning the whole pending set
    /// oldest first (see `Network::tick`).
    ///
    /// # Panics
    ///
    /// Panics if `cycle` moves backwards.
    pub fn tick(&mut self, cycle: u64) {
        self.tick_probed(cycle, &mut NullProbe)
    }

    /// [`ReferenceNetwork::tick`] with telemetry.
    pub fn tick_probed<P: Probe>(&mut self, cycle: u64, probe: &mut P) {
        if let Some(last) = self.last_tick {
            assert!(cycle > last, "network ticked backwards ({last} -> {cycle})");
        }
        self.last_tick = Some(cycle);
        for u in &mut self.used {
            *u = [0; 4];
        }
        // Single ordered pass compacting survivors in place (oldest-first
        // arbitration order is preserved; no per-element shifting).
        let mut kept = 0;
        for i in 0..self.pending.len() {
            let p = self.pending[i];
            let ci = class_index(p.transfer.class);
            // A transfer sent this cycle is eligible next cycle (send
            // buffers add one cycle of wire scheduling).
            let departs = p.enqueued < cycle
                && p.links()
                    .iter()
                    .all(|&l| self.used[l as usize][ci] < self.caps[l as usize][ci]);
            if departs {
                for &l in p.links() {
                    self.used[l as usize][ci] += 1;
                }
                self.stats.queue_cycles += cycle - p.enqueued - 1;
                let bits = p.transfer.kind.bits() as u64 * p.hops as u64;
                self.stats.bit_hops[ci] += bits;
                let mut unit = p.transfer.class.params().relative_dynamic;
                if self.config.transmission_line_l && p.transfer.class == WireClass::L {
                    unit /= 3.0; // Chang et al.: 3x energy reduction
                }
                self.stats.dynamic_energy += bits as f64 * unit;
                if P::ENABLED {
                    probe.depart(cycle, p.id.0, p.transfer.class, cycle - p.enqueued - 1);
                    for &l in p.links() {
                        probe.link_busy(cycle, l as usize, p.transfer.class);
                    }
                }
                self.in_flight.push(InFlight {
                    id: p.id,
                    transfer: p.transfer,
                    deliver_at: cycle + p.latency,
                });
            } else {
                self.pending[kept] = p;
                kept += 1;
            }
        }
        self.pending.truncate(kept);
    }

    /// Removes all transfers delivered at or before `cycle` into `out`
    /// (cleared first, then sorted by id).
    pub fn take_delivered_into(&mut self, cycle: u64, out: &mut Vec<(TransferId, Transfer)>) {
        self.take_delivered_into_probed(cycle, out, &mut NullProbe)
    }

    /// [`ReferenceNetwork::take_delivered_into`] with telemetry.
    pub fn take_delivered_into_probed<P: Probe>(
        &mut self,
        cycle: u64,
        out: &mut Vec<(TransferId, Transfer)>,
        probe: &mut P,
    ) {
        out.clear();
        let mut kept = 0;
        for i in 0..self.in_flight.len() {
            let f = self.in_flight[i];
            if f.deliver_at <= cycle {
                self.stats.delivered += 1;
                if P::ENABLED {
                    // `deliver_at`, not `cycle`: the kernel may have
                    // skipped idle cycles past the actual delivery time.
                    probe.deliver(f.deliver_at, f.id.0, f.transfer.class);
                }
                out.push((f.id, f.transfer));
            } else {
                self.in_flight[kept] = f;
                kept += 1;
            }
        }
        self.in_flight.truncate(kept);
        out.sort_unstable_by_key(|(id, _)| *id);
    }

    /// The earliest future cycle at which the network can change state
    /// (see `Network::next_event_cycle`).
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        if !self.pending.is_empty() {
            return Some(now + 1);
        }
        self.in_flight
            .iter()
            .map(|f| f.deliver_at)
            .min()
            .map(|d| d.max(now + 1))
    }

    /// Transfers still queued or in flight.
    pub fn inflight_len(&self) -> usize {
        self.pending.len() + self.in_flight.len()
    }

    /// Transfers buffered awaiting lane arbitration (not yet departed).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}
