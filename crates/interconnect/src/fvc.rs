//! Frequent-value compaction (the paper's §4 pointer to Yang et al. (ref. 47)):
//! a small table of the most frequent data values; a value that matches an
//! entry can be encoded by its index — a handful of bits — and therefore
//! ride an L-Wire lane even when it is not numerically narrow.
//!
//! The paper leaves this as "other forms of data compaction might also be
//! possible, but is not explored here"; we implement it as an optional
//! extension and evaluate it in the ablation harness.

use std::fmt;

/// A frequency-ordered table of the hottest values seen on the network.
///
/// The table approximates an LFU top-k: each hit increments a counter;
/// a miss decays the coldest entry and replaces it once its counter
/// reaches zero (a compact variant of Space-Saving).
#[derive(Debug, Clone)]
pub struct FrequentValueTable {
    entries: Vec<(u64, u32)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl FrequentValueTable {
    /// Creates a table of `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "table needs at least one entry");
        FrequentValueTable {
            entries: Vec::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// The Yang et al. configuration: eight values.
    pub fn yang() -> Self {
        Self::new(8)
    }

    /// Index of `value` in the table, if present (without updating
    /// frequencies) — the encoding the sender would transmit.
    pub fn encode(&self, value: u64) -> Option<u8> {
        self.entries
            .iter()
            .position(|&(v, _)| v == value)
            .map(|i| i as u8)
    }

    /// Observes `value`; returns `true` if it was (already) a frequent
    /// value. Trains the table either way.
    pub fn observe(&mut self, value: u64) -> bool {
        if let Some(i) = self.entries.iter().position(|&(v, _)| v == value) {
            self.entries[i].1 = self.entries[i].1.saturating_add(1);
            self.hits += 1;
            // Keep hottest first so `encode` indices are stable-ish.
            self.entries[..=i].sort_by_key(|e| std::cmp::Reverse(e.1));
            return true;
        }
        self.misses += 1;
        if self.entries.len() < self.capacity {
            self.entries.push((value, 1));
        } else if let Some(last) = self.entries.last_mut() {
            // Decay the coldest; replace once it reaches zero.
            if last.1 <= 1 {
                *last = (value, 1);
            } else {
                last.1 -= 1;
            }
        }
        false
    }

    /// Fraction of observed values that hit the table.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of values currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no values have been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for FrequentValueTable {
    fn default() -> Self {
        Self::yang()
    }
}

impl fmt::Display for FrequentValueTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FVC[{}] {:.0}% hit",
            self.entries.len(),
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_values_become_encodable() {
        let mut t = FrequentValueTable::new(4);
        for _ in 0..10 {
            t.observe(0);
            t.observe(u64::MAX);
        }
        assert!(t.encode(0).is_some());
        assert!(t.encode(u64::MAX).is_some());
        assert!(t.encode(12345).is_none());
    }

    #[test]
    fn skewed_stream_reaches_high_hit_rate() {
        // 50% zeros (the classic frequent value), rest unique.
        let mut t = FrequentValueTable::yang();
        for i in 0..10_000u64 {
            if i % 2 == 0 {
                t.observe(0);
            } else {
                t.observe(0x1_0000 + i);
            }
        }
        assert!(t.hit_rate() > 0.45, "hit rate {}", t.hit_rate());
    }

    #[test]
    fn uniform_stream_stays_cold() {
        let mut t = FrequentValueTable::yang();
        for i in 0..10_000u64 {
            t.observe(i);
        }
        assert!(t.hit_rate() < 0.01, "hit rate {}", t.hit_rate());
    }

    #[test]
    fn capacity_is_respected() {
        let mut t = FrequentValueTable::new(3);
        for i in 0..100 {
            t.observe(i % 7);
        }
        assert!(t.len() <= 3);
    }

    #[test]
    fn encode_fits_a_byte() {
        let mut t = FrequentValueTable::new(8);
        for v in 0..8u64 {
            for _ in 0..5 {
                t.observe(v);
            }
        }
        for v in 0..8u64 {
            assert!(t.encode(v).expect("tracked") < 8);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_panics() {
        let _ = FrequentValueTable::new(0);
    }
}
