//! Dynamic wire-selection policy (paper §4, "Exploiting PW-Wires" and the
//! L-Wire optimizations).
//!
//! For every transfer, the microarchitecture chooses a wire class:
//!
//! 1. messages that fit 18 bits (narrow results, partial addresses, branch
//!    mispredict signals) ride **L-Wires** when present;
//! 2. non-critical transfers — operands already ready at dispatch, store
//!    data — ride **PW-Wires** when present;
//! 3. under load imbalance (difference in traffic injected into the B and
//!    PW planes over the last `N` cycles exceeding a threshold), subsequent
//!    transfers steer to the less congested plane;
//! 4. everything else rides **B-Wires** (falling back to PW if B is absent).

use std::collections::VecDeque;

use heterowire_telemetry::{NullProbe, Probe};
use heterowire_wires::WireClass;

use crate::message::MessageKind;

/// Which wire planes the current interconnect model offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvailablePlanes {
    /// B-Wires present.
    pub b: bool,
    /// PW-Wires present.
    pub pw: bool,
    /// L-Wires present.
    pub l: bool,
}

impl AvailablePlanes {
    /// Convenience constructor.
    pub fn new(b: bool, pw: bool, l: bool) -> Self {
        assert!(b || pw, "a link needs at least one full-width plane");
        AvailablePlanes { b, pw, l }
    }
}

/// Why the transfer is being made — the criticality hints the paper's
/// steering criteria use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferHints {
    /// The operand was already ready when the consumer dispatched (long
    /// dispatch-to-issue gap tolerates slow wires).
    pub ready_at_dispatch: bool,
    /// This is store data (rarely on the critical path).
    pub store_data: bool,
}

/// Sliding-window traffic monitor for the B/PW load-imbalance criterion
/// (paper: N = 5 cycles, threshold = 10 transfers).
///
/// # Contract
///
/// The `cycle` arguments passed to [`LoadBalancer::record`],
/// [`LoadBalancer::overflow_target`] and [`LoadBalancer::counts`] must be
/// monotonically non-decreasing across the three methods combined. The
/// balancer sits on the per-send hot path and keeps running per-plane
/// tallies that are only adjusted as old entries expire off the front of
/// the window; an out-of-order cycle would both desynchronize the tallies
/// and break the expiry scan's front-is-oldest invariant. Both kernels
/// satisfy this naturally (sends happen in cycle order, and the
/// event-driven kernel's idle-cycle skipping only ever jumps forward);
/// debug builds assert it.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    window: u64,
    threshold: i64,
    /// (cycle, was_pw) injections within the window.
    recent: VecDeque<(u64, bool)>,
    /// Running tally of B injections in `recent`.
    b: u64,
    /// Running tally of PW injections in `recent`.
    pw: u64,
    /// Highest cycle seen (monotonicity check, debug builds only).
    #[cfg(debug_assertions)]
    last_cycle: u64,
}

impl LoadBalancer {
    /// Creates a balancer over the last `window` cycles with the given
    /// imbalance `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64, threshold: i64) -> Self {
        assert!(window > 0, "window must be positive");
        LoadBalancer {
            window,
            threshold,
            recent: VecDeque::new(),
            b: 0,
            pw: 0,
            #[cfg(debug_assertions)]
            last_cycle: 0,
        }
    }

    /// The paper's parameters: N = 5, threshold = 10.
    pub fn paper() -> Self {
        Self::new(5, 10)
    }

    /// Checks monotonicity and drops entries that slid out of the window,
    /// keeping the running per-plane tallies in sync.
    fn advance(&mut self, cycle: u64) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                cycle >= self.last_cycle,
                "LoadBalancer cycles must be monotonically non-decreasing \
                 (got {cycle} after {})",
                self.last_cycle
            );
            self.last_cycle = cycle;
        }
        while let Some(&(c, was_pw)) = self.recent.front() {
            if c + self.window <= cycle {
                self.recent.pop_front();
                if was_pw {
                    self.pw -= 1;
                } else {
                    self.b -= 1;
                }
            } else {
                break;
            }
        }
    }

    /// Records an injection into the B (`false`) or PW (`true`) plane.
    ///
    /// `cycle` must be >= every cycle previously passed to this balancer
    /// (see the type-level contract).
    pub fn record(&mut self, cycle: u64, pw: bool) {
        self.advance(cycle);
        self.recent.push_back((cycle, pw));
        if pw {
            self.pw += 1;
        } else {
            self.b += 1;
        }
    }

    /// If the imbalance exceeds the threshold, returns the less congested
    /// plane to steer toward.
    ///
    /// `cycle` must be >= every cycle previously passed to this balancer
    /// (see the type-level contract).
    pub fn overflow_target(&mut self, cycle: u64) -> Option<WireClass> {
        self.advance(cycle);
        let (b, pw) = (self.b as i64, self.pw as i64);
        if (b - pw).abs() > self.threshold {
            Some(if b > pw { WireClass::Pw } else { WireClass::B })
        } else {
            None
        }
    }

    /// Current `(b, pw)` counts in the window.
    pub fn counts(&mut self, cycle: u64) -> (u64, u64) {
        self.advance(cycle);
        (self.b, self.pw)
    }
}

/// The full wire-selection policy.
#[derive(Debug, Clone)]
pub struct WirePolicy {
    planes: AvailablePlanes,
    balancer: LoadBalancer,
    /// Enables the L-Wire optimizations (cache pipeline, narrow operands,
    /// branch signal).
    pub use_l_wires: bool,
    /// Enables the PW steering criteria.
    pub use_pw_steering: bool,
    /// Enables the load-imbalance overflow criterion.
    pub use_balancing: bool,
}

impl WirePolicy {
    /// Creates the policy for the given planes with the paper's balancer.
    pub fn new(planes: AvailablePlanes) -> Self {
        WirePolicy {
            planes,
            balancer: LoadBalancer::paper(),
            use_l_wires: planes.l,
            use_pw_steering: planes.pw,
            use_balancing: planes.b && planes.pw,
        }
    }

    /// Wire planes available to this policy.
    pub fn planes(&self) -> AvailablePlanes {
        self.planes
    }

    /// Chooses the wire class for a message, recording the choice in the
    /// balancer window.
    pub fn choose(&mut self, kind: MessageKind, hints: TransferHints, cycle: u64) -> WireClass {
        self.choose_probed(kind, hints, cycle, &mut NullProbe)
    }

    /// [`WirePolicy::choose`] with telemetry: emits
    /// [`Probe::steer_overflow`] when the load-imbalance criterion diverts
    /// the transfer. With [`NullProbe`] this monomorphizes to exactly
    /// `choose`.
    #[inline(never)]
    pub fn choose_probed<P: Probe>(
        &mut self,
        kind: MessageKind,
        hints: TransferHints,
        cycle: u64,
        probe: &mut P,
    ) -> WireClass {
        // 1. L-Wire-eligible messages.
        if self.use_l_wires && self.planes.l && kind.fits_l_wire() {
            return WireClass::L;
        }

        let full_default = if self.planes.b {
            WireClass::B
        } else {
            WireClass::Pw
        };

        // 2. Non-critical traffic to PW.
        let mut class = full_default;
        if self.use_pw_steering
            && self.planes.pw
            && self.planes.b
            && (hints.ready_at_dispatch || hints.store_data)
        {
            class = WireClass::Pw;
        } else if self.use_balancing && self.planes.b && self.planes.pw {
            // 3. Overflow steering under imbalance.
            if let Some(target) = self.balancer.overflow_target(cycle) {
                class = target;
                if P::ENABLED {
                    probe.steer_overflow(cycle, target);
                }
            }
        }

        if class == WireClass::Pw || class == WireClass::B {
            self.balancer.record(cycle, class == WireClass::Pw);
        }
        class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_planes() -> AvailablePlanes {
        AvailablePlanes::new(true, true, true)
    }

    #[test]
    fn narrow_messages_take_l_wires() {
        let mut p = WirePolicy::new(all_planes());
        assert_eq!(
            p.choose(MessageKind::NarrowValue, TransferHints::default(), 0),
            WireClass::L
        );
        assert_eq!(
            p.choose(MessageKind::BranchMispredict, TransferHints::default(), 0),
            WireClass::L
        );
        assert_eq!(
            p.choose(MessageKind::PartialAddress, TransferHints::default(), 0),
            WireClass::L
        );
    }

    #[test]
    fn wide_critical_messages_take_b_wires() {
        let mut p = WirePolicy::new(all_planes());
        assert_eq!(
            p.choose(MessageKind::RegisterValue, TransferHints::default(), 0),
            WireClass::B
        );
    }

    #[test]
    fn non_critical_messages_take_pw_wires() {
        let mut p = WirePolicy::new(all_planes());
        let ready = TransferHints {
            ready_at_dispatch: true,
            store_data: false,
        };
        assert_eq!(
            p.choose(MessageKind::RegisterValue, ready, 0),
            WireClass::Pw
        );
        let store = TransferHints {
            ready_at_dispatch: false,
            store_data: true,
        };
        assert_eq!(p.choose(MessageKind::StoreData, store, 0), WireClass::Pw);
    }

    #[test]
    fn without_pw_plane_everything_wide_rides_b() {
        let mut p = WirePolicy::new(AvailablePlanes::new(true, false, true));
        let store = TransferHints {
            ready_at_dispatch: false,
            store_data: true,
        };
        assert_eq!(p.choose(MessageKind::StoreData, store, 0), WireClass::B);
    }

    #[test]
    fn without_b_plane_everything_wide_rides_pw() {
        let mut p = WirePolicy::new(AvailablePlanes::new(false, true, true));
        assert_eq!(
            p.choose(MessageKind::RegisterValue, TransferHints::default(), 0),
            WireClass::Pw
        );
    }

    #[test]
    fn imbalance_steers_overflow_to_pw() {
        let mut p = WirePolicy::new(all_planes());
        // Saturate B with 11 critical transfers in one cycle window.
        for _ in 0..11 {
            assert_eq!(
                p.choose(MessageKind::RegisterValue, TransferHints::default(), 10),
                WireClass::B
            );
        }
        // Imbalance (11 - 0 > 10): the next wide transfer diverts to PW.
        assert_eq!(
            p.choose(MessageKind::RegisterValue, TransferHints::default(), 10),
            WireClass::Pw
        );
    }

    #[test]
    fn balancer_window_expires() {
        let mut lb = LoadBalancer::new(5, 10);
        for _ in 0..12 {
            lb.record(0, false);
        }
        assert_eq!(lb.overflow_target(0), Some(WireClass::Pw));
        // 5 cycles later the window is empty again.
        assert_eq!(lb.overflow_target(5), None);
        assert_eq!(lb.counts(5), (0, 0));
    }

    #[test]
    fn balancer_steers_both_directions() {
        let mut lb = LoadBalancer::new(5, 2);
        for _ in 0..4 {
            lb.record(0, true);
        }
        assert_eq!(lb.overflow_target(0), Some(WireClass::B));
    }

    /// The seed's original balancer: re-expires and linearly rescans the
    /// whole window deque on every query. Kept as the reference the
    /// counter-maintaining implementation is pinned against.
    struct ScanBalancer {
        window: u64,
        threshold: i64,
        recent: VecDeque<(u64, bool)>,
    }

    impl ScanBalancer {
        fn new(window: u64, threshold: i64) -> Self {
            ScanBalancer {
                window,
                threshold,
                recent: VecDeque::new(),
            }
        }

        fn expire(&mut self, cycle: u64) {
            while let Some(&(c, _)) = self.recent.front() {
                if c + self.window <= cycle {
                    self.recent.pop_front();
                } else {
                    break;
                }
            }
        }

        fn record(&mut self, cycle: u64, pw: bool) {
            self.expire(cycle);
            self.recent.push_back((cycle, pw));
        }

        fn overflow_target(&mut self, cycle: u64) -> Option<WireClass> {
            self.expire(cycle);
            let pw = self.recent.iter().filter(|&&(_, is_pw)| is_pw).count() as i64;
            let b = self.recent.len() as i64 - pw;
            if (b - pw).abs() > self.threshold {
                Some(if b > pw { WireClass::Pw } else { WireClass::B })
            } else {
                None
            }
        }

        fn counts(&mut self, cycle: u64) -> (u64, u64) {
            self.expire(cycle);
            let pw = self.recent.iter().filter(|&&(_, is_pw)| is_pw).count() as u64;
            (self.recent.len() as u64 - pw, pw)
        }
    }

    #[test]
    fn running_counters_pin_the_scan_implementation() {
        // A deterministic pseudo-random traffic sequence with bursts, idle
        // gaps (the event kernel skips cycles) and both planes: every query
        // of the counter-based balancer must match the scan reference.
        for (window, threshold) in [(5, 10), (1, 0), (8, 3), (64, 20)] {
            let mut fast = LoadBalancer::new(window, threshold);
            let mut slow = ScanBalancer::new(window, threshold);
            let mut cycle = 0u64;
            let mut state = 0x5EED_2005u64;
            for step in 0..20_000u64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = state >> 33;
                // Mostly stay on the same cycle (bursts), sometimes jump
                // far ahead (idle-cycle skipping empties the window).
                cycle += match r % 10 {
                    0..=5 => 0,
                    6..=7 => 1,
                    8 => 2,
                    _ => window + (r % 97),
                };
                match (r >> 8) % 3 {
                    0 => {
                        let pw = (r >> 16) & 1 == 1;
                        fast.record(cycle, pw);
                        slow.record(cycle, pw);
                    }
                    1 => {
                        assert_eq!(
                            fast.overflow_target(cycle),
                            slow.overflow_target(cycle),
                            "overflow_target diverged at step {step} cycle {cycle}"
                        );
                    }
                    _ => {
                        assert_eq!(
                            fast.counts(cycle),
                            slow.counts(cycle),
                            "counts diverged at step {step} cycle {cycle}"
                        );
                    }
                }
            }
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "monotonically non-decreasing")]
    fn out_of_order_record_is_rejected_in_debug_builds() {
        let mut lb = LoadBalancer::paper();
        lb.record(10, false);
        lb.record(9, true);
    }

    #[test]
    #[should_panic(expected = "full-width plane")]
    fn l_only_planes_panic() {
        let _ = AvailablePlanes::new(false, false, true);
    }

    #[test]
    fn l_optimizations_can_be_disabled() {
        let mut p = WirePolicy::new(all_planes());
        p.use_l_wires = false;
        assert_eq!(
            p.choose(MessageKind::NarrowValue, TransferHints::default(), 0),
            WireClass::B
        );
    }
}
