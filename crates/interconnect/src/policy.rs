//! Dynamic wire-selection policy (paper §4, "Exploiting PW-Wires" and the
//! L-Wire optimizations).
//!
//! For every transfer, the microarchitecture chooses a wire class:
//!
//! 1. messages that fit 18 bits (narrow results, partial addresses, branch
//!    mispredict signals) ride **L-Wires** when present;
//! 2. non-critical transfers — operands already ready at dispatch, store
//!    data — ride **PW-Wires** when present;
//! 3. under load imbalance (difference in traffic injected into the B and
//!    PW planes over the last `N` cycles exceeding a threshold), subsequent
//!    transfers steer to the less congested plane;
//! 4. everything else rides **B-Wires** (falling back to PW if B is absent).

use std::collections::VecDeque;

use heterowire_telemetry::{NullProbe, Probe};
use heterowire_wires::WireClass;

use crate::message::MessageKind;

/// Which wire planes the current interconnect model offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvailablePlanes {
    /// B-Wires present.
    pub b: bool,
    /// PW-Wires present.
    pub pw: bool,
    /// L-Wires present.
    pub l: bool,
}

impl AvailablePlanes {
    /// Convenience constructor.
    pub fn new(b: bool, pw: bool, l: bool) -> Self {
        assert!(b || pw, "a link needs at least one full-width plane");
        AvailablePlanes { b, pw, l }
    }
}

/// Why the transfer is being made — the criticality hints the paper's
/// steering criteria use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferHints {
    /// The operand was already ready when the consumer dispatched (long
    /// dispatch-to-issue gap tolerates slow wires).
    pub ready_at_dispatch: bool,
    /// This is store data (rarely on the critical path).
    pub store_data: bool,
}

/// Sliding-window traffic monitor for the B/PW load-imbalance criterion
/// (paper: N = 5 cycles, threshold = 10 transfers).
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    window: u64,
    threshold: i64,
    /// (cycle, was_pw) injections within the window.
    recent: VecDeque<(u64, bool)>,
}

impl LoadBalancer {
    /// Creates a balancer over the last `window` cycles with the given
    /// imbalance `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64, threshold: i64) -> Self {
        assert!(window > 0, "window must be positive");
        LoadBalancer {
            window,
            threshold,
            recent: VecDeque::new(),
        }
    }

    /// The paper's parameters: N = 5, threshold = 10.
    pub fn paper() -> Self {
        Self::new(5, 10)
    }

    fn expire(&mut self, cycle: u64) {
        while let Some(&(c, _)) = self.recent.front() {
            if c + self.window <= cycle {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    /// Records an injection into the B (`false`) or PW (`true`) plane.
    pub fn record(&mut self, cycle: u64, pw: bool) {
        self.expire(cycle);
        self.recent.push_back((cycle, pw));
    }

    /// If the imbalance exceeds the threshold, returns the less congested
    /// plane to steer toward.
    pub fn overflow_target(&mut self, cycle: u64) -> Option<WireClass> {
        self.expire(cycle);
        let pw = self.recent.iter().filter(|&&(_, is_pw)| is_pw).count() as i64;
        let b = self.recent.len() as i64 - pw;
        if (b - pw).abs() > self.threshold {
            Some(if b > pw { WireClass::Pw } else { WireClass::B })
        } else {
            None
        }
    }

    /// Current `(b, pw)` counts in the window.
    pub fn counts(&mut self, cycle: u64) -> (u64, u64) {
        self.expire(cycle);
        let pw = self.recent.iter().filter(|&&(_, is_pw)| is_pw).count() as u64;
        (self.recent.len() as u64 - pw, pw)
    }
}

/// The full wire-selection policy.
#[derive(Debug, Clone)]
pub struct WirePolicy {
    planes: AvailablePlanes,
    balancer: LoadBalancer,
    /// Enables the L-Wire optimizations (cache pipeline, narrow operands,
    /// branch signal).
    pub use_l_wires: bool,
    /// Enables the PW steering criteria.
    pub use_pw_steering: bool,
    /// Enables the load-imbalance overflow criterion.
    pub use_balancing: bool,
}

impl WirePolicy {
    /// Creates the policy for the given planes with the paper's balancer.
    pub fn new(planes: AvailablePlanes) -> Self {
        WirePolicy {
            planes,
            balancer: LoadBalancer::paper(),
            use_l_wires: planes.l,
            use_pw_steering: planes.pw,
            use_balancing: planes.b && planes.pw,
        }
    }

    /// Wire planes available to this policy.
    pub fn planes(&self) -> AvailablePlanes {
        self.planes
    }

    /// Chooses the wire class for a message, recording the choice in the
    /// balancer window.
    pub fn choose(&mut self, kind: MessageKind, hints: TransferHints, cycle: u64) -> WireClass {
        self.choose_probed(kind, hints, cycle, &mut NullProbe)
    }

    /// [`WirePolicy::choose`] with telemetry: emits
    /// [`Probe::steer_overflow`] when the load-imbalance criterion diverts
    /// the transfer. With [`NullProbe`] this monomorphizes to exactly
    /// `choose`.
    #[inline(never)]
    pub fn choose_probed<P: Probe>(
        &mut self,
        kind: MessageKind,
        hints: TransferHints,
        cycle: u64,
        probe: &mut P,
    ) -> WireClass {
        // 1. L-Wire-eligible messages.
        if self.use_l_wires && self.planes.l && kind.fits_l_wire() {
            return WireClass::L;
        }

        let full_default = if self.planes.b {
            WireClass::B
        } else {
            WireClass::Pw
        };

        // 2. Non-critical traffic to PW.
        let mut class = full_default;
        if self.use_pw_steering
            && self.planes.pw
            && self.planes.b
            && (hints.ready_at_dispatch || hints.store_data)
        {
            class = WireClass::Pw;
        } else if self.use_balancing && self.planes.b && self.planes.pw {
            // 3. Overflow steering under imbalance.
            if let Some(target) = self.balancer.overflow_target(cycle) {
                class = target;
                if P::ENABLED {
                    probe.steer_overflow(cycle, target);
                }
            }
        }

        if class == WireClass::Pw || class == WireClass::B {
            self.balancer.record(cycle, class == WireClass::Pw);
        }
        class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_planes() -> AvailablePlanes {
        AvailablePlanes::new(true, true, true)
    }

    #[test]
    fn narrow_messages_take_l_wires() {
        let mut p = WirePolicy::new(all_planes());
        assert_eq!(
            p.choose(MessageKind::NarrowValue, TransferHints::default(), 0),
            WireClass::L
        );
        assert_eq!(
            p.choose(MessageKind::BranchMispredict, TransferHints::default(), 0),
            WireClass::L
        );
        assert_eq!(
            p.choose(MessageKind::PartialAddress, TransferHints::default(), 0),
            WireClass::L
        );
    }

    #[test]
    fn wide_critical_messages_take_b_wires() {
        let mut p = WirePolicy::new(all_planes());
        assert_eq!(
            p.choose(MessageKind::RegisterValue, TransferHints::default(), 0),
            WireClass::B
        );
    }

    #[test]
    fn non_critical_messages_take_pw_wires() {
        let mut p = WirePolicy::new(all_planes());
        let ready = TransferHints {
            ready_at_dispatch: true,
            store_data: false,
        };
        assert_eq!(
            p.choose(MessageKind::RegisterValue, ready, 0),
            WireClass::Pw
        );
        let store = TransferHints {
            ready_at_dispatch: false,
            store_data: true,
        };
        assert_eq!(p.choose(MessageKind::StoreData, store, 0), WireClass::Pw);
    }

    #[test]
    fn without_pw_plane_everything_wide_rides_b() {
        let mut p = WirePolicy::new(AvailablePlanes::new(true, false, true));
        let store = TransferHints {
            ready_at_dispatch: false,
            store_data: true,
        };
        assert_eq!(p.choose(MessageKind::StoreData, store, 0), WireClass::B);
    }

    #[test]
    fn without_b_plane_everything_wide_rides_pw() {
        let mut p = WirePolicy::new(AvailablePlanes::new(false, true, true));
        assert_eq!(
            p.choose(MessageKind::RegisterValue, TransferHints::default(), 0),
            WireClass::Pw
        );
    }

    #[test]
    fn imbalance_steers_overflow_to_pw() {
        let mut p = WirePolicy::new(all_planes());
        // Saturate B with 11 critical transfers in one cycle window.
        for _ in 0..11 {
            assert_eq!(
                p.choose(MessageKind::RegisterValue, TransferHints::default(), 10),
                WireClass::B
            );
        }
        // Imbalance (11 - 0 > 10): the next wide transfer diverts to PW.
        assert_eq!(
            p.choose(MessageKind::RegisterValue, TransferHints::default(), 10),
            WireClass::Pw
        );
    }

    #[test]
    fn balancer_window_expires() {
        let mut lb = LoadBalancer::new(5, 10);
        for _ in 0..12 {
            lb.record(0, false);
        }
        assert_eq!(lb.overflow_target(0), Some(WireClass::Pw));
        // 5 cycles later the window is empty again.
        assert_eq!(lb.overflow_target(5), None);
        assert_eq!(lb.counts(5), (0, 0));
    }

    #[test]
    fn balancer_steers_both_directions() {
        let mut lb = LoadBalancer::new(5, 2);
        for _ in 0..4 {
            lb.record(0, true);
        }
        assert_eq!(lb.overflow_target(0), Some(WireClass::B));
    }

    #[test]
    #[should_panic(expected = "full-width plane")]
    fn l_only_planes_panic() {
        let _ = AvailablePlanes::new(false, false, true);
    }

    #[test]
    fn l_optimizations_can_be_disabled() {
        let mut p = WirePolicy::new(all_planes());
        p.use_l_wires = false;
        assert_eq!(
            p.choose(MessageKind::NarrowValue, TransferHints::default(), 0),
            WireClass::B
        );
    }
}
