//! Spec-driven topology generation: the parseable, validated description
//! layer over [`crate::topology::Topology`].
//!
//! A [`TopologySpec`] names a topology three ways:
//!
//! * a **preset** — `crossbar4` or `hier16`, the paper's two Figure-2
//!   shapes, each delegating to a compact spec string (and pinned
//!   bit-identical to the enum-built constructors by tests);
//! * a **compact string** — `xbar:<clusters>` or `ring:<quads>x<per_quad>`
//!   with optional `@hop<n>` / `@xbar<n>` wire-segment-length overrides
//!   (`xbar:8`, `ring:6x4`, `ring:4x4@hop3`);
//! * a **key=value file** — one `key = value` per line (`shape`,
//!   `clusters` / `quads` / `per_quad`, `hop_len`, `xbar_len`), `#`
//!   comments allowed; see [`TopologySpec::parse_file`].
//!
//! All three converge on the same validation: shapes the route engine
//! cannot hold (rings past 8 quads), degenerate counts (a 1-cluster
//! crossbar, a 2-quad ring whose directed segments would coincide) and
//! malformed overrides are loud [`TopoSpecError`]s with pointed messages —
//! the harness binaries surface them as exit status 2, mirroring
//! `ModelSpec`. Route latencies of the generated topologies derive from
//! the `wires` segment model ([`heterowire_wires::segment_latency`]), so
//! a spec never states cycle counts, only geometry.

mod file;
mod spec;

pub use spec::{TopoSpecError, TopologyPreset, TopologySpec};
