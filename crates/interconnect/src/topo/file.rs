//! The key=value spec-file form of [`TopologySpec`].
//!
//! ```text
//! # 6 quads of 4 clusters, slow ring hops
//! shape    = ring
//! quads    = 6
//! per_quad = 4
//! hop_len  = 3
//! ```
//!
//! `shape` is required (`xbar` or `ring`); `clusters` applies to crossbars,
//! `quads` / `per_quad` to rings; `hop_len` / `xbar_len` override the wire
//! segment lengths the latency derivation uses. Unknown, duplicate,
//! missing or shape-inapplicable keys are loud [`TopoSpecError`]s.

use super::spec::{build_crossbar, build_ring, TopoSpecError, TopologySpec};
use crate::topology::{DEFAULT_HOP_LEN, DEFAULT_XBAR_LEN};

/// One parsed `key = value` assignment.
struct Assign<'a> {
    key: &'a str,
    value: &'a str,
}

pub(super) fn parse_file_str(contents: &str) -> Result<TopologySpec, TopoSpecError> {
    let mut assigns: Vec<Assign> = Vec::new();
    for (i, raw) in contents.lines().enumerate() {
        let line = i + 1;
        let text = match raw.split_once('#') {
            Some((before, _)) => before,
            None => raw,
        }
        .trim();
        if text.is_empty() {
            continue;
        }
        let Some((key, value)) = text.split_once('=') else {
            return Err(TopoSpecError::FileSyntax {
                line,
                text: text.to_string(),
            });
        };
        let (key, value) = (key.trim(), value.trim());
        if key.is_empty() || value.is_empty() {
            return Err(TopoSpecError::FileSyntax {
                line,
                text: text.to_string(),
            });
        }
        const KNOWN: [&str; 6] = [
            "shape", "clusters", "quads", "per_quad", "hop_len", "xbar_len",
        ];
        if !KNOWN.contains(&key) {
            return Err(TopoSpecError::UnknownKey {
                line,
                key: key.to_string(),
            });
        }
        if assigns.iter().any(|a| a.key == key) {
            return Err(TopoSpecError::DuplicateKey {
                line,
                key: key.to_string(),
            });
        }
        assigns.push(Assign { key, value });
    }
    if assigns.is_empty() {
        return Err(TopoSpecError::Empty);
    }

    let get = |key: &str| assigns.iter().find(|a| a.key == key);
    let dim = |key: &'static str| -> Result<Option<usize>, TopoSpecError> {
        match get(key) {
            None => Ok(None),
            Some(a) => match a.value.parse::<usize>() {
                Ok(n) if n > 0 => Ok(Some(n)),
                _ => Err(TopoSpecError::InvalidDim {
                    what: key,
                    token: a.value.to_string(),
                }),
            },
        }
    };
    let seg_len = |key: &'static str| -> Result<Option<u32>, TopoSpecError> {
        Ok(dim(key)?.map(|n| n as u32))
    };

    let shape = get("shape").ok_or(TopoSpecError::MissingKey {
        shape: "any",
        key: "shape",
    })?;
    let reject = |shape_word: &'static str, key: &'static str| -> Result<(), TopoSpecError> {
        match get(key) {
            Some(a) => Err(TopoSpecError::KeyNotApplicable {
                shape: shape_word,
                key: a.key.to_string(),
            }),
            None => Ok(()),
        }
    };
    let xbar_len = seg_len("xbar_len")?.unwrap_or(DEFAULT_XBAR_LEN);
    let topology = match shape.value {
        "xbar" => {
            reject("xbar", "quads")?;
            reject("xbar", "per_quad")?;
            reject("xbar", "hop_len")?;
            let clusters = dim("clusters")?.ok_or(TopoSpecError::MissingKey {
                shape: "xbar",
                key: "clusters",
            })?;
            build_crossbar(clusters, xbar_len)?
        }
        "ring" => {
            reject("ring", "clusters")?;
            let quads = dim("quads")?.ok_or(TopoSpecError::MissingKey {
                shape: "ring",
                key: "quads",
            })?;
            let per_quad = dim("per_quad")?.ok_or(TopoSpecError::MissingKey {
                shape: "ring",
                key: "per_quad",
            })?;
            let hop_len = seg_len("hop_len")?.unwrap_or(DEFAULT_HOP_LEN);
            build_ring(quads, per_quad, xbar_len, hop_len)?
        }
        other => return Err(TopoSpecError::UnknownShape(other.to_string())),
    };
    Ok(TopologySpec::from_topology(topology))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CapacityError, Topology};

    #[test]
    fn file_form_parses_both_shapes() {
        let spec = TopologySpec::parse_file(
            "# the hier16 preset, spelled out\nshape = ring\nquads = 4\nper_quad = 4\n",
        )
        .unwrap();
        assert_eq!(spec.topology(), Topology::hier16());
        assert_eq!(spec.name(), "ring:4x4");

        let spec = TopologySpec::parse_file("shape = xbar\nclusters = 8\nxbar_len = 2\n").unwrap();
        assert_eq!(spec.topology().clusters(), 8);
        assert_eq!(spec.topology().xbar_len(), 2);
        assert_eq!(spec.name(), "xbar:8@xbar2");
    }

    #[test]
    fn file_form_matches_the_equivalent_compact_spec() {
        let by_file = TopologySpec::parse_file(
            "shape = ring\nquads = 6\nper_quad = 2\nhop_len = 3  # slow hops\n",
        )
        .unwrap();
        let by_compact = TopologySpec::parse("ring:6x2@hop3").unwrap();
        assert_eq!(by_file, by_compact);
    }

    #[test]
    fn file_form_rejects_malformed_input() {
        use TopoSpecError as E;
        let err = |s: &str| TopologySpec::parse_file(s).unwrap_err();
        assert_eq!(err(""), E::Empty);
        assert_eq!(err("# only comments\n\n"), E::Empty);
        assert!(matches!(err("shape ring\n"), E::FileSyntax { line: 1, .. }));
        assert!(matches!(err("shape =\n"), E::FileSyntax { .. }));
        assert!(matches!(
            err("shape = ring\ncolor = red\n"),
            E::UnknownKey { line: 2, .. }
        ));
        assert!(matches!(
            err("shape = ring\nquads = 4\nquads = 5\n"),
            E::DuplicateKey { line: 3, .. }
        ));
        assert!(matches!(
            err("quads = 4\nper_quad = 4\n"),
            E::MissingKey { key: "shape", .. }
        ));
        assert!(matches!(
            err("shape = ring\nquads = 4\n"),
            E::MissingKey {
                key: "per_quad",
                ..
            }
        ));
        assert!(matches!(
            err("shape = xbar\nclusters = 4\nhop_len = 2\n"),
            E::KeyNotApplicable { .. }
        ));
        assert_eq!(
            err("shape = torus\nclusters = 4\n"),
            E::UnknownShape("torus".into())
        );
        assert!(matches!(
            err("shape = ring\nquads = 0\nper_quad = 4\n"),
            E::InvalidDim { what: "quads", .. }
        ));
        // Shared validation with the compact form.
        assert_eq!(
            err("shape = ring\nquads = 2\nper_quad = 4\n"),
            E::Capacity(CapacityError::TooFewQuads(2))
        );
        assert_eq!(
            err("shape = ring\nquads = 20\nper_quad = 1\n"),
            E::Capacity(CapacityError::RouteTooLong {
                quads: 20,
                needed: 12
            })
        );
        assert_eq!(
            err("shape = xbar\nclusters = 100\n"),
            E::Capacity(CapacityError::TooManyClusters { clusters: 100 })
        );
    }
}
