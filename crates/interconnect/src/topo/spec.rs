//! The compact-string topology grammar and its validation errors.

use std::fmt;
use std::str::FromStr;

use crate::topology::{
    check_crossbar, check_ring, CapacityError, Topology, DEFAULT_HOP_LEN, DEFAULT_XBAR_LEN,
};

/// The paper's two named shapes, delegating to compact spec strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyPreset {
    /// Figure 2(a): 4 clusters on one crossbar (`xbar:4`).
    Crossbar4,
    /// Figure 2(b): 4 quads of 4 clusters on a ring (`ring:4x4`).
    Hier16,
}

impl TopologyPreset {
    /// Both presets, in Figure-2 order.
    pub const ALL: [TopologyPreset; 2] = [TopologyPreset::Crossbar4, TopologyPreset::Hier16];

    /// The command-line token naming this preset.
    pub fn name(self) -> &'static str {
        match self {
            TopologyPreset::Crossbar4 => "crossbar4",
            TopologyPreset::Hier16 => "hier16",
        }
    }

    /// The compact spec string this preset delegates to.
    pub fn spec_str(self) -> &'static str {
        match self {
            TopologyPreset::Crossbar4 => "xbar:4",
            TopologyPreset::Hier16 => "ring:4x4",
        }
    }

    /// The generated topology (structurally equal to the enum-built
    /// constructor of the same name — pinned by tests).
    pub fn topology(self) -> Topology {
        let spec = TopologySpec::parse(self.spec_str()).expect("preset spec strings are valid");
        spec.topology()
    }
}

/// Why a topology token, spec string or spec file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoSpecError {
    /// The token or file was empty.
    Empty,
    /// A bare token that is neither a preset nor a `<shape>:<dims>` spec.
    UnknownTopology(String),
    /// The shape word before `:` (or the `shape =` value) is unknown.
    UnknownShape(String),
    /// A dimension (clusters / quads / per-quad) is missing, non-numeric
    /// or zero.
    InvalidDim {
        /// Which dimension failed.
        what: &'static str,
        /// The offending text.
        token: String,
    },
    /// Ring dims are not `<quads>x<per_quad>`.
    BadRingDims(String),
    /// The shape exceeds a simulator capacity bound (too few clusters or
    /// quads, too many clusters, or a route past the inline cap). Wraps
    /// the shared checker's [`CapacityError`] so the refusal wording lives
    /// in exactly one place.
    Capacity(CapacityError),
    /// An `@...` override suffix names no known key (`hop`, `xbar`).
    UnknownOverride(String),
    /// The same latency override appears twice.
    DuplicateOverride(&'static str),
    /// `@hop` on a crossbar, which has no ring hops.
    OverrideNotApplicable {
        /// The override key.
        key: &'static str,
    },
    /// An override value is missing, non-numeric or zero.
    InvalidOverride {
        /// The override key.
        key: &'static str,
        /// The offending text.
        token: String,
    },
    /// A spec-file line is not `key = value`, a comment or blank.
    FileSyntax {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        text: String,
    },
    /// A spec-file key is unknown.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The offending key.
        key: String,
    },
    /// A spec-file key appears twice.
    DuplicateKey {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The duplicated key.
        key: String,
    },
    /// A spec-file key required by the shape is missing.
    MissingKey {
        /// The shape word.
        shape: &'static str,
        /// The missing key.
        key: &'static str,
    },
    /// A spec-file key does not apply to the declared shape.
    KeyNotApplicable {
        /// The shape word.
        shape: &'static str,
        /// The inapplicable key.
        key: String,
    },
}

impl fmt::Display for TopoSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoSpecError::Empty => write!(
                f,
                "empty topology spec; expected a preset (crossbar4, hier16) or a \
                 spec like \"xbar:8\" or \"ring:6x4\""
            ),
            TopoSpecError::UnknownTopology(t) => write!(
                f,
                "unknown topology {t:?}; expected a preset (crossbar4, hier16) or a \
                 spec like \"xbar:8\" or \"ring:6x4[@hop<n>][@xbar<n>]\""
            ),
            TopoSpecError::UnknownShape(s) => {
                write!(f, "unknown shape {s:?}; expected xbar or ring")
            }
            TopoSpecError::InvalidDim { what, token } => {
                write!(f, "{what} must be a positive integer, got {token:?}")
            }
            TopoSpecError::BadRingDims(d) => write!(
                f,
                "ring dims {d:?} must be <quads>x<clusters-per-quad>, e.g. \"ring:6x4\""
            ),
            TopoSpecError::Capacity(e) => write!(f, "{e}"),
            TopoSpecError::UnknownOverride(o) => {
                write!(f, "unknown override @{o}; expected @hop<n> or @xbar<n>")
            }
            TopoSpecError::DuplicateOverride(key) => {
                write!(f, "duplicate @{key} latency override")
            }
            TopoSpecError::OverrideNotApplicable { key } => {
                write!(
                    f,
                    "@{key} does not apply to a crossbar (it has no ring hops)"
                )
            }
            TopoSpecError::InvalidOverride { key, token } => write!(
                f,
                "@{key} needs a positive segment length, got {token:?} (e.g. \"@{key}2\")"
            ),
            TopoSpecError::FileSyntax { line, text } => write!(
                f,
                "spec file line {line}: expected `key = value`, got {text:?}"
            ),
            TopoSpecError::UnknownKey { line, key } => write!(
                f,
                "spec file line {line}: unknown key {key:?}; expected shape, clusters, \
                 quads, per_quad, hop_len, xbar_len"
            ),
            TopoSpecError::DuplicateKey { line, key } => {
                write!(f, "spec file line {line}: duplicate key {key:?}")
            }
            TopoSpecError::MissingKey { shape, key } => {
                write!(f, "spec file: shape {shape} requires a `{key} = ...` line")
            }
            TopoSpecError::KeyNotApplicable { shape, key } => {
                write!(f, "spec file: key {key:?} does not apply to shape {shape}")
            }
        }
    }
}

impl std::error::Error for TopoSpecError {}

/// Parses one dimension as a positive integer.
fn parse_dim(what: &'static str, token: &str) -> Result<usize, TopoSpecError> {
    let err = || TopoSpecError::InvalidDim {
        what,
        token: token.to_string(),
    };
    let n: usize = token.trim().parse().map_err(|_| err())?;
    if n == 0 {
        return Err(err());
    }
    Ok(n)
}

impl From<CapacityError> for TopoSpecError {
    fn from(e: CapacityError) -> Self {
        TopoSpecError::Capacity(e)
    }
}

/// Builds and validates a crossbar topology (shared by the compact and
/// file parsers); validation is the shared capacity checker.
pub(super) fn build_crossbar(clusters: usize, xbar_len: u32) -> Result<Topology, TopoSpecError> {
    check_crossbar(clusters)?;
    Ok(Topology::crossbar(clusters).with_segment_lengths(xbar_len, DEFAULT_HOP_LEN))
}

/// Builds and validates a hierarchical-ring topology (shared by the
/// compact and file parsers); validation is the shared capacity checker.
pub(super) fn build_ring(
    quads: usize,
    per_quad: usize,
    xbar_len: u32,
    hop_len: u32,
) -> Result<Topology, TopoSpecError> {
    check_ring(quads, per_quad)?;
    Ok(Topology::hier_ring(quads, per_quad).with_segment_lengths(xbar_len, hop_len))
}

/// A validated, parseable topology description: a preset name or a
/// generated shape. Parsing and formatting round-trip
/// (`parse(spec.name()) == spec`), and the generated [`Topology`] compares
/// structurally, so `parse("ring:4x4").topology() == Topology::hier16()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologySpec {
    preset: Option<TopologyPreset>,
    topology: Topology,
}

impl TopologySpec {
    /// Parses a preset name (`crossbar4`, `hier16`) or a compact spec
    /// (`xbar:<clusters>`, `ring:<quads>x<per_quad>`, each with optional
    /// `@hop<n>` / `@xbar<n>` segment-length overrides).
    pub fn parse(token: &str) -> Result<Self, TopoSpecError> {
        let token = token.trim();
        if token.is_empty() {
            return Err(TopoSpecError::Empty);
        }
        for p in TopologyPreset::ALL {
            if p.name() == token {
                // Parse the delegated spec string directly (not via
                // `p.topology()`, which would recurse through here).
                let spec = Self::parse(p.spec_str())?;
                return Ok(TopologySpec {
                    preset: Some(p),
                    topology: spec.topology,
                });
            }
        }
        let Some((shape, rest)) = token.split_once(':') else {
            return Err(TopoSpecError::UnknownTopology(token.to_string()));
        };

        let mut parts = rest.split('@');
        let dims = parts.next().unwrap_or("");
        let mut xbar_len: Option<u32> = None;
        let mut hop_len: Option<u32> = None;
        for ov in parts {
            let digits_at = ov.find(|c: char| c.is_ascii_digit()).unwrap_or(ov.len());
            let (key, value) = ov.split_at(digits_at);
            let slot = match key {
                "hop" => &mut hop_len,
                "xbar" => &mut xbar_len,
                _ => return Err(TopoSpecError::UnknownOverride(ov.to_string())),
            };
            let key: &'static str = if key == "hop" { "hop" } else { "xbar" };
            if slot.is_some() {
                return Err(TopoSpecError::DuplicateOverride(key));
            }
            let len: u32 = value.parse().map_err(|_| TopoSpecError::InvalidOverride {
                key,
                token: ov.to_string(),
            })?;
            if len == 0 {
                return Err(TopoSpecError::InvalidOverride {
                    key,
                    token: ov.to_string(),
                });
            }
            *slot = Some(len);
        }

        let topology = match shape {
            "xbar" => {
                if hop_len.is_some() {
                    return Err(TopoSpecError::OverrideNotApplicable { key: "hop" });
                }
                let clusters = parse_dim("clusters", dims)?;
                build_crossbar(clusters, xbar_len.unwrap_or(DEFAULT_XBAR_LEN))?
            }
            "ring" => {
                let Some((q, p)) = dims.split_once('x') else {
                    return Err(TopoSpecError::BadRingDims(dims.to_string()));
                };
                let quads = parse_dim("quads", q)?;
                let per_quad = parse_dim("clusters per quad", p)?;
                build_ring(
                    quads,
                    per_quad,
                    xbar_len.unwrap_or(DEFAULT_XBAR_LEN),
                    hop_len.unwrap_or(DEFAULT_HOP_LEN),
                )?
            }
            other => return Err(TopoSpecError::UnknownShape(other.to_string())),
        };
        Ok(TopologySpec {
            preset: None,
            topology,
        })
    }

    /// Parses the key=value spec-file form (see [`crate::topo`] module
    /// docs for the grammar).
    pub fn parse_file(contents: &str) -> Result<Self, TopoSpecError> {
        super::file::parse_file_str(contents)
    }

    /// Wraps an already-built topology (no preset attribution).
    pub fn from_topology(topology: Topology) -> Self {
        TopologySpec {
            preset: None,
            topology,
        }
    }

    /// The preset this spec names, if it was given by preset name.
    pub fn preset(&self) -> Option<TopologyPreset> {
        self.preset
    }

    /// The generated topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The parseable name: the preset name, or the canonical compact spec
    /// string ([`Topology::spec_string`]).
    pub fn name(&self) -> String {
        match self.preset {
            Some(p) => p.name().to_string(),
            None => self.topology.spec_string(),
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl FromStr for TopologySpec {
    type Err = TopoSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_delegate_to_their_spec_strings() {
        for p in TopologyPreset::ALL {
            let by_name = TopologySpec::parse(p.name()).unwrap();
            let by_spec = TopologySpec::parse(p.spec_str()).unwrap();
            assert_eq!(by_name.preset(), Some(p));
            assert_eq!(by_spec.preset(), None, "spec form is not auto-promoted");
            assert_eq!(by_name.topology(), by_spec.topology());
            // name() round-trips for both forms.
            assert_eq!(TopologySpec::parse(&by_name.name()).unwrap(), by_name);
            assert_eq!(TopologySpec::parse(&by_spec.name()).unwrap(), by_spec);
        }
        assert_eq!(
            TopologySpec::parse("crossbar4").unwrap().topology(),
            Topology::crossbar4()
        );
        assert_eq!(
            TopologySpec::parse("hier16").unwrap().topology(),
            Topology::hier16()
        );
    }

    #[test]
    fn compact_specs_generate_the_expected_shapes() {
        let t = TopologySpec::parse("xbar:8").unwrap().topology();
        assert_eq!(t.clusters(), 8);
        assert!(!t.is_ring());

        let t = TopologySpec::parse("ring:6x4").unwrap().topology();
        assert_eq!((t.quads(), t.per_quad(), t.clusters()), (6, 4, 24));

        let t = TopologySpec::parse("ring:4x4@hop3").unwrap().topology();
        assert_eq!(t.hop_len(), 3);
        assert_eq!(t.xbar_len(), 1);

        let t = TopologySpec::parse("xbar:2@xbar2").unwrap().topology();
        assert_eq!(t.xbar_len(), 2);

        // Overrides compose in either order.
        assert_eq!(
            TopologySpec::parse("ring:5x2@hop3@xbar2").unwrap(),
            TopologySpec::parse("ring:5x2@xbar2@hop3").unwrap()
        );
    }

    #[test]
    fn whitespace_is_tolerated_around_the_token() {
        assert_eq!(
            TopologySpec::parse("  ring:4x4 ").unwrap().topology(),
            Topology::hier16()
        );
    }

    #[test]
    fn malformed_specs_fail_with_pointed_errors() {
        use TopoSpecError as E;
        let err = |s: &str| TopologySpec::parse(s).unwrap_err();
        assert_eq!(err(""), E::Empty);
        assert_eq!(err("   "), E::Empty);
        assert_eq!(err("mesh"), E::UnknownTopology("mesh".into()));
        assert_eq!(err("mesh:4"), E::UnknownShape("mesh".into()));
        assert!(matches!(
            err("xbar:"),
            E::InvalidDim {
                what: "clusters",
                ..
            }
        ));
        assert!(matches!(
            err("xbar:0"),
            E::InvalidDim {
                what: "clusters",
                ..
            }
        ));
        assert!(matches!(err("xbar:four"), E::InvalidDim { .. }));
        assert_eq!(err("xbar:1"), E::Capacity(CapacityError::TooFewClusters(1)));
        assert_eq!(
            err("xbar:65"),
            E::Capacity(CapacityError::TooManyClusters { clusters: 65 })
        );
        assert_eq!(err("ring:6"), E::BadRingDims("6".into()));
        assert!(matches!(
            err("ring:0x4"),
            E::InvalidDim { what: "quads", .. }
        ));
        assert!(matches!(err("ring:4x0"), E::InvalidDim { .. }));
        assert_eq!(err("ring:2x4"), E::Capacity(CapacityError::TooFewQuads(2)));
        assert_eq!(
            err("ring:20x2"),
            E::Capacity(CapacityError::RouteTooLong {
                quads: 20,
                needed: 12
            })
        );
        assert_eq!(
            err("ring:16x5"),
            E::Capacity(CapacityError::TooManyClusters { clusters: 80 })
        );
        assert_eq!(err("ring:4x4@speed2"), E::UnknownOverride("speed2".into()));
        assert_eq!(err("ring:4x4@hop2@hop3"), E::DuplicateOverride("hop"));
        assert_eq!(err("xbar:4@hop2"), E::OverrideNotApplicable { key: "hop" });
        assert!(matches!(
            err("ring:4x4@hop0"),
            E::InvalidOverride { key: "hop", .. }
        ));
        assert!(matches!(err("ring:4x4@hop"), E::InvalidOverride { .. }));
        // Every error Displays a non-empty, pointed message.
        for s in [
            "",
            "mesh",
            "mesh:4",
            "xbar:1",
            "xbar:65",
            "ring:2x4",
            "ring:20x2",
            "ring:16x5",
            "ring:4x4@hop2@hop3",
        ] {
            let msg = TopologySpec::parse(s).unwrap_err().to_string();
            assert!(!msg.is_empty(), "{s:?}");
        }
    }

    #[test]
    fn route_bound_errors_name_the_limit() {
        let msg = TopologySpec::parse("ring:20x2").unwrap_err().to_string();
        assert!(msg.contains("at most 16 quads"), "{msg}");
        // 16 quads is the boundary (2 + 16/2 = 10 inline links) and is
        // accepted — ring:16x4 is the 64-cluster headline shape.
        let t = TopologySpec::parse("ring:16x4").unwrap().topology();
        assert_eq!(t.max_route_links(), 10);
        assert_eq!(t.clusters(), 64);
    }

    #[test]
    fn cluster_cap_errors_name_cap_and_offender() {
        // The refusal wording comes from the one shared checker: it names
        // both the offending cluster count and the simulator-wide cap.
        for spec in ["xbar:65", "ring:13x5"] {
            let msg = TopologySpec::parse(spec).unwrap_err().to_string();
            assert!(msg.contains("65 clusters"), "{spec}: {msg}");
            assert!(msg.contains("at most 64"), "{spec}: {msg}");
        }
        // The widest supported crossbar parses.
        let t = TopologySpec::parse("xbar:64").unwrap().topology();
        assert_eq!(t.clusters(), 64);
    }
}
