//! Deterministic wire-fault injection.
//!
//! The paper's L-Wires buy energy with reduced voltage swing — and
//! therefore reduced noise margin — so a fabric study needs a fault axis.
//! This module provides it in three pieces:
//!
//! - [`FaultModel`]: the static-dispatch injection hook the network
//!   engines are generic over. It follows the exact
//!   [`Probe::ENABLED`](heterowire_telemetry::Probe::ENABLED) pattern:
//!   [`NullFaultModel`] (`ENABLED = false`) monomorphizes every
//!   corruption check away, so the fault-free simulator is bit-identical
//!   to the pre-fault code (pinned by `tests/fault_injection.rs`).
//! - [`InjectedFaults`]: seeded per-wire-class bit-error rates. Each
//!   delivery attempt draws from an [`SmallRng`] stream keyed by
//!   `(seed, transfer id, attempt)`, so the draw is independent of the
//!   order the engine processes deliveries in — the indexed `Network`
//!   and the scan-based `ReferenceNetwork` corrupt exactly the same
//!   attempts, and reruns are bit-reproducible.
//! - [`FaultSpec`]: the command-line grammar (`faults:l@2e-4`,
//!   `faults:l@1e-4+b@1e-5`, `faults:lane:L3@stuck`), parsed like
//!   `ModelSpec`/`TopologySpec` with loud, actionable errors the
//!   binaries surface with exit status 2. Permanent `lane:…@stuck`
//!   faults are applied at configuration time: the stuck lanes are
//!   retired from the live [`LinkComposition`] so steering policies,
//!   the load balancer and lane arbitration all see only the surviving
//!   capacity.

use std::fmt;

use heterowire_rng::SmallRng;
use heterowire_wires::{LinkComposition, WireClass};

use crate::network::class_index;

/// Static-dispatch fault injection for the network engines.
///
/// `corrupts` is consulted once per delivery attempt; the call sites are
/// guarded by `F::ENABLED`, so a disabled model costs nothing. The
/// contract mirrors [`Probe`](heterowire_telemetry::Probe): the decision
/// must depend only on the arguments and the model's own frozen state
/// (never on call order), so both network engines and repeated runs
/// agree on every draw.
pub trait FaultModel: fmt::Debug + Clone {
    /// `false` only for [`NullFaultModel`]: call sites guard on this
    /// constant so the fault-free path compiles to the unfaulted code.
    const ENABLED: bool = true;

    /// Does delivery attempt `attempt` of transfer `id` arrive corrupted?
    /// `bits` is the message's wire footprint and `hops` the route's
    /// energy-hop count — together the exposure of the transfer.
    fn corrupts(&self, id: u64, attempt: u32, class: WireClass, bits: u32, hops: u32) -> bool;

    /// Failed attempts on the original class before the retransmission
    /// escalates to the B plane.
    fn retry_limit(&self) -> u32;
}

/// The default fault model: nothing ever corrupts, and the checks vanish
/// at monomorphization (`ENABLED = false`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullFaultModel;

impl FaultModel for NullFaultModel {
    const ENABLED: bool = false;

    #[inline]
    fn corrupts(&self, _id: u64, _attempt: u32, _class: WireClass, _bits: u32, _hops: u32) -> bool {
        false
    }

    #[inline]
    fn retry_limit(&self) -> u32 {
        0
    }
}

/// Seeded transient fault injection: per-wire-class bit-error rates.
///
/// Built from a [`FaultSpec`] via [`FaultSpec::injector`]. A transfer of
/// `bits` wire bits crossing `hops` hops is corrupted with probability
/// `1 - (1 - ber)^(bits * hops)`; the Bernoulli draw comes from a fresh
/// xoshiro stream seeded by `(seed, id, attempt)`, making it a pure
/// function of the attempt identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedFaults {
    ber: [f64; 4],
    seed: u64,
    retry_limit: u32,
}

impl FaultModel for InjectedFaults {
    fn corrupts(&self, id: u64, attempt: u32, class: WireClass, bits: u32, hops: u32) -> bool {
        let ber = self.ber[class_index(class)];
        if ber <= 0.0 {
            return false;
        }
        let p = if ber >= 1.0 {
            // gen_bool is exact at p = 1: a saturated rate corrupts every
            // attempt (the guaranteed-stall scenario in the tests).
            1.0
        } else {
            1.0 - (1.0 - ber).powi((bits as u64 * hops as u64).min(i32::MAX as u64) as i32)
        };
        // The multiplier is odd (injective over ids); adding the attempt
        // separates re-deliveries of the same id. SplitMix64 inside
        // seed_from_u64 does the real mixing.
        let stream = id
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(attempt as u64);
        SmallRng::seed_from_u64(self.seed ^ stream).gen_bool(p)
    }

    fn retry_limit(&self) -> u32 {
        self.retry_limit
    }
}

/// Default injection seed (used when a spec has no `seed:` item).
pub const DEFAULT_FAULT_SEED: u64 = 0x5EED_FA17;
/// Default same-class retries before escalating to B (`retry:` item).
pub const DEFAULT_RETRY_LIMIT: u32 = 2;

/// A parsed fault scenario: transient per-class bit-error rates plus
/// permanently stuck lanes, with the injection seed and the retry bound.
///
/// Grammar (after an optional `faults:` prefix), items joined by `+`:
///
/// ```text
/// <class>@<rate>        transient BER for a class     l@2e-4, b@1e-5
/// lane:<CLASS><n>@stuck lane n of the class is dead   lane:L1@stuck
/// retry:<n>             same-class retries before B   retry:3
/// seed:<n>              injection seed                seed:7
/// ```
///
/// Class letters are case-insensitive (`b`, `pw`, `l`, `w`). At least one
/// fault item (a rate or a stuck lane) is required; duplicates of any
/// item are rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    ber: [f64; 4],
    /// Stuck lanes, sorted by (class index, lane index).
    stuck: Vec<(WireClass, u32)>,
    seed: u64,
    retry_limit: u32,
}

impl FaultSpec {
    /// Parses a fault token; see the type docs for the grammar.
    pub fn parse(token: &str) -> Result<Self, FaultSpecError> {
        let body = token.strip_prefix("faults:").unwrap_or(token);
        if body.is_empty() {
            return Err(FaultSpecError::Empty);
        }
        let mut ber = [0.0f64; 4];
        let mut have_rate = [false; 4];
        let mut stuck: Vec<(WireClass, u32)> = Vec::new();
        let mut seed = None;
        let mut retry = None;
        for item in body.split('+') {
            if let Some(rest) = item.strip_prefix("lane:") {
                let (class, lane) = parse_stuck_lane(item, rest)?;
                if stuck.contains(&(class, lane)) {
                    return Err(FaultSpecError::DuplicateLane(class, lane));
                }
                stuck.push((class, lane));
            } else if let Some(rest) = item.strip_prefix("seed:") {
                if seed.is_some() {
                    return Err(FaultSpecError::DuplicateField("seed"));
                }
                seed = Some(
                    rest.parse::<u64>()
                        .map_err(|_| FaultSpecError::BadField("seed", item.to_string()))?,
                );
            } else if let Some(rest) = item.strip_prefix("retry:") {
                if retry.is_some() {
                    return Err(FaultSpecError::DuplicateField("retry"));
                }
                retry = Some(
                    rest.parse::<u32>()
                        .map_err(|_| FaultSpecError::BadField("retry", item.to_string()))?,
                );
            } else if let Some((letter, rate)) = item.split_once('@') {
                let class = class_from_letter(letter)
                    .ok_or_else(|| FaultSpecError::UnknownItem(item.to_string()))?;
                let rate: f64 = rate
                    .parse()
                    .ok()
                    .filter(|r: &f64| (0.0..=1.0).contains(r))
                    .ok_or_else(|| FaultSpecError::BadRate(item.to_string()))?;
                let ci = class_index(class);
                if have_rate[ci] {
                    return Err(FaultSpecError::DuplicateRate(class));
                }
                have_rate[ci] = true;
                ber[ci] = rate;
            } else {
                return Err(FaultSpecError::UnknownItem(item.to_string()));
            }
        }
        if !have_rate.iter().any(|&h| h) && stuck.is_empty() {
            return Err(FaultSpecError::NoFaultItems);
        }
        stuck.sort_unstable_by_key(|&(c, lane)| (class_index(c), lane));
        Ok(FaultSpec {
            ber,
            stuck,
            seed: seed.unwrap_or(DEFAULT_FAULT_SEED),
            retry_limit: retry.unwrap_or(DEFAULT_RETRY_LIMIT),
        })
    }

    /// Canonical token for this spec (round-trips through [`parse`];
    /// non-default seed/retry are included). Used to label artifact rows.
    ///
    /// [`parse`]: FaultSpec::parse
    pub fn name(&self) -> String {
        let mut items: Vec<String> = Vec::new();
        for &class in &WireClass::ALL {
            let rate = self.ber[class_index(class)];
            if rate > 0.0 {
                items.push(format!("{}@{}", class_letter(class), rate));
            }
        }
        for &(class, lane) in &self.stuck {
            items.push(format!("lane:{}{}@stuck", class.label(), lane));
        }
        if self.retry_limit != DEFAULT_RETRY_LIMIT {
            items.push(format!("retry:{}", self.retry_limit));
        }
        if self.seed != DEFAULT_FAULT_SEED {
            items.push(format!("seed:{}", self.seed));
        }
        items.join("+")
    }

    /// The transient bit-error rate configured for `class`.
    pub fn ber(&self, class: WireClass) -> f64 {
        self.ber[class_index(class)]
    }

    /// The permanently stuck lanes, sorted by (class, lane index).
    pub fn stuck_lanes(&self) -> &[(WireClass, u32)] {
        &self.stuck
    }

    /// The injection seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Same-class retries before a retransmission escalates to B.
    pub fn retry_limit(&self) -> u32 {
        self.retry_limit
    }

    /// True when the spec carries a non-zero transient rate (stuck-only
    /// specs degrade the link but never corrupt in-flight transfers).
    pub fn has_transient(&self) -> bool {
        self.ber.iter().any(|&r| r > 0.0)
    }

    /// The runtime injector for the transient rates.
    pub fn injector(&self) -> InjectedFaults {
        InjectedFaults {
            ber: self.ber,
            seed: self.seed,
            retry_limit: self.retry_limit,
        }
    }

    /// Retires this spec's stuck lanes from a link composition — the
    /// configuration-time half of the fault model. Every consumer of the
    /// returned link (steering policies, `LoadBalancer` tallies, network
    /// lane caps) then steers against the surviving capacity through the
    /// existing lane-starved clamping paths. Fails when a lane index
    /// exceeds the link, or when retirement leaves no full-width (b or
    /// pw or w) plane: full-size transfers would have no legal plane
    /// left, so the run is refused up front.
    pub fn apply_to_link(&self, link: &LinkComposition) -> Result<LinkComposition, FaultSpecError> {
        let mut out = link.clone();
        for &class in &WireClass::ALL {
            let lanes: Vec<u32> = self
                .stuck
                .iter()
                .filter(|&&(c, _)| c == class)
                .map(|&(_, lane)| lane)
                .collect();
            if lanes.is_empty() {
                continue;
            }
            let available = link.lanes(class);
            for &lane in &lanes {
                if lane >= available {
                    return Err(FaultSpecError::LaneOutOfRange {
                        class,
                        lane,
                        lanes: available,
                    });
                }
            }
            out = out
                .with_lanes_retired(class, lanes.len() as u32)
                .expect("lane indices validated against the live lane count");
        }
        if out.lanes(WireClass::B) == 0
            && out.lanes(WireClass::Pw) == 0
            && out.lanes(WireClass::W) == 0
        {
            return Err(FaultSpecError::NoFullWidthPlane(link.to_string()));
        }
        Ok(out)
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "faults:{}", self.name())
    }
}

/// Lowercase spec letter for a class (the `LinkSpec` convention).
fn class_letter(class: WireClass) -> &'static str {
    match class {
        WireClass::W => "w",
        WireClass::Pw => "pw",
        WireClass::B => "b",
        WireClass::L => "l",
    }
}

fn class_from_letter(s: &str) -> Option<WireClass> {
    WireClass::ALL
        .into_iter()
        .find(|&c| class_letter(c).eq_ignore_ascii_case(s))
}

/// Parses the payload of one `lane:<CLASS><n>@stuck` item (`rest` is the
/// part after `lane:`, `item` the full item for error messages).
fn parse_stuck_lane(item: &str, rest: &str) -> Result<(WireClass, u32), FaultSpecError> {
    let bad = || FaultSpecError::BadLane(item.to_string());
    let (lane_spec, mode) = rest.split_once('@').ok_or_else(bad)?;
    if mode != "stuck" {
        return Err(bad());
    }
    let digits = lane_spec
        .find(|c: char| c.is_ascii_digit())
        .ok_or_else(bad)?;
    let class = class_from_letter(&lane_spec[..digits]).ok_or_else(bad)?;
    let lane: u32 = lane_spec[digits..].parse().map_err(|_| bad())?;
    Ok((class, lane))
}

/// Error cases of [`FaultSpec::parse`] and [`FaultSpec::apply_to_link`],
/// with actionable messages in the `ModelSpec`/`TopologySpec` style (the
/// binaries print them and exit with status 2).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpecError {
    /// The token had no payload at all.
    Empty,
    /// An item matched none of the grammar's forms.
    UnknownItem(String),
    /// A `<class>@<rate>` item whose rate is not a number in [0, 1].
    BadRate(String),
    /// The same class was given a rate twice.
    DuplicateRate(WireClass),
    /// A malformed `lane:…` item.
    BadLane(String),
    /// The same lane was declared stuck twice.
    DuplicateLane(WireClass, u32),
    /// A malformed `seed:`/`retry:` value (field name, offending item).
    BadField(&'static str, String),
    /// A `seed:`/`retry:` field given twice.
    DuplicateField(&'static str),
    /// No rate and no stuck lane: the spec would inject nothing.
    NoFaultItems,
    /// A stuck lane index at or past the link's live lane count.
    LaneOutOfRange {
        /// Class of the out-of-range lane.
        class: WireClass,
        /// The offending lane index.
        lane: u32,
        /// Lanes the link actually has for that class.
        lanes: u32,
    },
    /// Retirement would leave no full-width plane (link description).
    NoFullWidthPlane(String),
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::Empty => {
                write!(
                    f,
                    "empty fault spec; expected e.g. faults:l@2e-4 or faults:lane:L1@stuck"
                )
            }
            FaultSpecError::UnknownItem(item) => write!(
                f,
                "unrecognized fault item {item:?}; expected <class>@<rate> (e.g. l@2e-4), \
                 lane:<CLASS><n>@stuck (e.g. lane:L1@stuck), retry:<n> or seed:<n>"
            ),
            FaultSpecError::BadRate(item) => write!(
                f,
                "bad bit-error rate in {item:?}: the rate must be a number in [0, 1] \
                 (e.g. l@2e-4)"
            ),
            FaultSpecError::DuplicateRate(class) => {
                write!(
                    f,
                    "class {} given a bit-error rate more than once",
                    class.label()
                )
            }
            FaultSpecError::BadLane(item) => write!(
                f,
                "bad stuck-lane item {item:?}; expected lane:<CLASS><n>@stuck \
                 (e.g. lane:L1@stuck, lane:PW0@stuck)"
            ),
            FaultSpecError::DuplicateLane(class, lane) => {
                write!(
                    f,
                    "lane {}{lane} declared stuck more than once",
                    class.label()
                )
            }
            FaultSpecError::BadField(name, item) => {
                write!(
                    f,
                    "bad {name} in {item:?}: expected {name}:<non-negative integer>"
                )
            }
            FaultSpecError::DuplicateField(name) => write!(f, "{name} given more than once"),
            FaultSpecError::NoFaultItems => write!(
                f,
                "fault spec contains no faults; give at least one <class>@<rate> or \
                 lane:<CLASS><n>@stuck item"
            ),
            FaultSpecError::LaneOutOfRange { class, lane, lanes } => write!(
                f,
                "stuck lane {0}{lane} is out of range: the link has {lanes} {0} lane(s) \
                 (lane indices start at 0)",
                class.label()
            ),
            FaultSpecError::NoFullWidthPlane(link) => write!(
                f,
                "stuck lanes leave [{link}] with no full-width (b or pw) plane; \
                 full-size transfers would have no wires to use"
            ),
        }
    }
}

impl std::error::Error for FaultSpecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use heterowire_wires::WirePlane;

    fn model_x_link() -> LinkComposition {
        LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 144),
            WirePlane::new(WireClass::Pw, 288),
            WirePlane::new(WireClass::L, 36),
        ])
        .unwrap()
    }

    #[test]
    fn parses_the_issue_examples() {
        let s = FaultSpec::parse("faults:l@2e-4").unwrap();
        assert_eq!(s.ber(WireClass::L), 2e-4);
        assert_eq!(s.ber(WireClass::B), 0.0);
        assert_eq!(s.seed(), DEFAULT_FAULT_SEED);
        assert_eq!(s.retry_limit(), DEFAULT_RETRY_LIMIT);

        let s = FaultSpec::parse("faults:l@1e-4+b@1e-5").unwrap();
        assert_eq!(s.ber(WireClass::L), 1e-4);
        assert_eq!(s.ber(WireClass::B), 1e-5);

        let s = FaultSpec::parse("faults:lane:L3@stuck").unwrap();
        assert_eq!(s.stuck_lanes(), &[(WireClass::L, 3)]);
        assert!(!s.has_transient());

        // The prefix is optional and letters are case-insensitive.
        let s = FaultSpec::parse("PW@0.5+lane:pw1@stuck+retry:4+seed:9").unwrap();
        assert_eq!(s.ber(WireClass::Pw), 0.5);
        assert_eq!(s.stuck_lanes(), &[(WireClass::Pw, 1)]);
        assert_eq!(s.retry_limit(), 4);
        assert_eq!(s.seed(), 9);
    }

    #[test]
    fn name_round_trips() {
        for token in [
            "l@2e-4",
            "l@0.0001+b@0.00001",
            "lane:L3@stuck",
            "b@0.5+lane:B0@stuck+lane:L1@stuck+retry:4+seed:9",
        ] {
            let spec = FaultSpec::parse(token).unwrap();
            assert_eq!(FaultSpec::parse(&spec.name()).unwrap(), spec, "{token}");
        }
        // Stuck lanes are canonically sorted.
        let a = FaultSpec::parse("lane:L1@stuck+lane:B0@stuck").unwrap();
        let b = FaultSpec::parse("lane:B0@stuck+lane:L1@stuck").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.name(), "lane:B0@stuck+lane:L1@stuck");
    }

    #[test]
    fn malformed_specs_are_loud() {
        let err = |t: &str| FaultSpec::parse(t).unwrap_err();
        assert_eq!(err("faults:"), FaultSpecError::Empty);
        assert!(matches!(err("x@1e-4"), FaultSpecError::UnknownItem(_)));
        assert!(matches!(err("l@1.5"), FaultSpecError::BadRate(_)));
        assert!(matches!(err("l@-0.1"), FaultSpecError::BadRate(_)));
        assert!(matches!(err("l@fast"), FaultSpecError::BadRate(_)));
        assert_eq!(
            err("l@1e-4+l@2e-4"),
            FaultSpecError::DuplicateRate(WireClass::L)
        );
        assert!(matches!(err("lane:L@stuck"), FaultSpecError::BadLane(_)));
        assert!(matches!(err("lane:3@stuck"), FaultSpecError::BadLane(_)));
        assert!(matches!(err("lane:L3@flaky"), FaultSpecError::BadLane(_)));
        assert_eq!(
            err("lane:L3@stuck+lane:L3@stuck"),
            FaultSpecError::DuplicateLane(WireClass::L, 3)
        );
        assert!(matches!(
            err("l@1e-4+seed:x"),
            FaultSpecError::BadField("seed", _)
        ));
        assert!(matches!(
            err("l@1e-4+retry:-1"),
            FaultSpecError::BadField("retry", _)
        ));
        assert_eq!(
            err("l@1e-4+seed:1+seed:2"),
            FaultSpecError::DuplicateField("seed")
        );
        assert_eq!(err("seed:1"), FaultSpecError::NoFaultItems);
        assert_eq!(err("retry:3"), FaultSpecError::NoFaultItems);
        // Every message is actionable (mentions the expected form).
        assert!(err("x@1e-4").to_string().contains("l@2e-4"));
        assert!(err("lane:L3@flaky").to_string().contains("lane:L1@stuck"));
    }

    #[test]
    fn stuck_lanes_degrade_the_link() {
        let link = model_x_link();
        let spec = FaultSpec::parse("lane:L1@stuck").unwrap();
        let degraded = spec.apply_to_link(&link).unwrap();
        assert_eq!(degraded.lanes(WireClass::L), 1);
        assert_eq!(degraded.lanes(WireClass::B), 2);
        assert_eq!(degraded.lanes(WireClass::Pw), 4);

        // Killing the whole L plane is legal (full-width planes survive)...
        let spec = FaultSpec::parse("lane:L0@stuck+lane:L1@stuck").unwrap();
        let degraded = spec.apply_to_link(&link).unwrap();
        assert_eq!(degraded.lanes(WireClass::L), 0);

        // ...but an out-of-range lane index is refused with the count.
        let spec = FaultSpec::parse("lane:L3@stuck").unwrap();
        let e = spec.apply_to_link(&link).unwrap_err();
        assert_eq!(
            e,
            FaultSpecError::LaneOutOfRange {
                class: WireClass::L,
                lane: 3,
                lanes: 2
            }
        );
        assert!(e.to_string().contains("2 L lane(s)"), "{e}");

        // Retiring every full-width lane strands full-size transfers.
        let b_only = LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 144),
            WirePlane::new(WireClass::L, 36),
        ])
        .unwrap();
        let spec = FaultSpec::parse("lane:B0@stuck+lane:B1@stuck").unwrap();
        let e = spec.apply_to_link(&b_only).unwrap_err();
        assert!(matches!(e, FaultSpecError::NoFullWidthPlane(_)));
        assert!(e.to_string().contains("no full-width"), "{e}");
    }

    #[test]
    fn corruption_draws_are_order_independent_and_seeded() {
        // 0.05 per bit over 18 bits ~ 0.60 per attempt: a 200-draw sample
        // reliably contains both outcomes.
        let inj = FaultSpec::parse("l@0.05+seed:42").unwrap().injector();
        // Pure function of (id, attempt): any evaluation order agrees.
        let forward: Vec<bool> = (0..200)
            .map(|id| inj.corrupts(id, 0, WireClass::L, 18, 1))
            .collect();
        let backward: Vec<bool> = (0..200)
            .rev()
            .map(|id| inj.corrupts(id, 0, WireClass::L, 18, 1))
            .rev()
            .collect();
        assert_eq!(forward, backward);
        assert!(forward.iter().any(|&c| c), "a 0.60 draw rate corrupts some");
        assert!(!forward.iter().all(|&c| c), "but not all");
        // Attempts draw independently.
        let per_attempt: Vec<bool> = (0..32)
            .map(|a| inj.corrupts(7, a, WireClass::L, 18, 1))
            .collect();
        assert!(per_attempt.iter().any(|&c| c));
        assert!(!per_attempt.iter().all(|&c| c));
        // A different seed changes the pattern.
        let other = FaultSpec::parse("l@0.05+seed:43").unwrap().injector();
        let reseeded: Vec<bool> = (0..200)
            .map(|id| inj.corrupts(id, 0, WireClass::L, 18, 1))
            .collect();
        assert_eq!(forward, reseeded, "same injector, same draws");
        let changed: Vec<bool> = (0..200)
            .map(|id| other.corrupts(id, 0, WireClass::L, 18, 1))
            .collect();
        assert_ne!(forward, changed);
        // Classes with zero BER never corrupt; BER 1 always corrupts.
        assert!(!inj.corrupts(1, 0, WireClass::B, 72, 4));
        let total = FaultSpec::parse("b@1").unwrap().injector();
        assert!((0..100).all(|id| total.corrupts(id, 0, WireClass::B, 72, 1)));
    }

    #[test]
    fn exposure_scales_with_bits_and_hops() {
        // With a mid-range BER, more bits x hops means more corruption.
        let inj = FaultSpec::parse("b@0.001").unwrap().injector();
        let rate = |bits: u32, hops: u32| {
            (0..2000)
                .filter(|&id| inj.corrupts(id, 0, WireClass::B, bits, hops))
                .count()
        };
        let small = rate(72, 1);
        let large = rate(72, 8);
        assert!(large > small, "hops raise exposure: {small} vs {large}");
    }

    #[test]
    fn null_model_is_disabled() {
        const { assert!(!<NullFaultModel as FaultModel>::ENABLED) };
        const { assert!(<InjectedFaults as FaultModel>::ENABLED) };
        assert!(!NullFaultModel.corrupts(0, 0, WireClass::L, 18, 1));
    }

    #[test]
    fn display_includes_the_prefix() {
        let spec = FaultSpec::parse("l@2e-4").unwrap();
        assert_eq!(spec.to_string(), "faults:l@0.0002");
        assert_eq!(FaultSpec::parse(&spec.to_string()).unwrap(), spec);
    }
}
