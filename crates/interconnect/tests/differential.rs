//! Randomized differential tests: the indexed O(events) [`Network`] must be
//! bit-identical to the retained scan-based [`ReferenceNetwork`] under
//! randomized bursty and starvation-shaped traffic on both topologies —
//! same [`NetStats`] (including the f64 energy accumulator, so grant order
//! matters), same delivery sets in the same order, same probe event
//! sequences at the same cycles, and same next-event answers every cycle.

use heterowire_interconnect::{
    FaultSpec, MessageKind, NetConfig, NetStats, Network, Node, ReferenceNetwork, Topology,
    TopologySpec, Transfer, TransferId,
};
use heterowire_rng::SmallRng;
use heterowire_telemetry::Probe;
use heterowire_wires::{LinkComposition, WireClass, WirePlane};

/// Every probe hook the network fires, with its full payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Enqueue(u64, u64, WireClass),
    Depart(u64, u64, WireClass, u64),
    LinkBusy(u64, usize, WireClass),
    Deliver(u64, u64, WireClass),
    FaultDetected(u64, u64, WireClass, u32),
    Retransmit(u64, u64, WireClass, u32),
}

#[derive(Debug, Default)]
struct RecProbe {
    events: Vec<Event>,
}

impl Probe for RecProbe {
    fn enqueue(&mut self, cycle: u64, id: u64, class: WireClass) {
        self.events.push(Event::Enqueue(cycle, id, class));
    }

    fn depart(&mut self, cycle: u64, id: u64, class: WireClass, queued: u64) {
        self.events.push(Event::Depart(cycle, id, class, queued));
    }

    fn link_busy(&mut self, cycle: u64, link: usize, class: WireClass) {
        self.events.push(Event::LinkBusy(cycle, link, class));
    }

    fn deliver(&mut self, cycle: u64, id: u64, class: WireClass) {
        self.events.push(Event::Deliver(cycle, id, class));
    }

    fn fault_detected(&mut self, cycle: u64, id: u64, class: WireClass, attempt: u32) {
        self.events
            .push(Event::FaultDetected(cycle, id, class, attempt));
    }

    fn retransmit(&mut self, cycle: u64, id: u64, class: WireClass, attempt: u32) {
        self.events
            .push(Event::Retransmit(cycle, id, class, attempt));
    }
}

fn full_link() -> LinkComposition {
    // The paper's Model X link: all three heterogeneous planes.
    LinkComposition::new(vec![
        WirePlane::new(WireClass::B, 144),
        WirePlane::new(WireClass::Pw, 288),
        WirePlane::new(WireClass::L, 36),
    ])
    .unwrap()
}

fn random_node(rng: &mut SmallRng, clusters: usize) -> Node {
    // The cache shows up often enough to exercise the widened links.
    if rng.gen_bool(0.2) {
        Node::Cache
    } else {
        Node::Cluster(rng.gen_range(0..clusters))
    }
}

fn random_transfer(rng: &mut SmallRng, clusters: usize, hot: bool) -> Transfer {
    let (src, dst) = if hot {
        // Starvation shape: hammer one route so its lanes saturate and
        // younger transfers bypass blocked older ones for many cycles.
        (Node::Cluster(0), Node::Cluster(1 % clusters))
    } else {
        let src = random_node(rng, clusters);
        loop {
            let dst = random_node(rng, clusters);
            if dst != src {
                break (src, dst);
            }
        }
    };
    let class = match rng.gen_range(0..3u32) {
        0 => WireClass::B,
        1 => WireClass::Pw,
        _ => WireClass::L,
    };
    let kind = if class == WireClass::L {
        match rng.gen_range(0..4u32) {
            0 => MessageKind::NarrowValue,
            1 => MessageKind::PartialAddress,
            2 => MessageKind::BranchMispredict,
            _ => MessageKind::SplitValue,
        }
    } else {
        match rng.gen_range(0..4u32) {
            0 => MessageKind::RegisterValue,
            1 => MessageKind::FullAddress,
            2 => MessageKind::StoreData,
            _ => MessageKind::CacheData,
        }
    };
    Transfer {
        src,
        dst,
        class,
        kind,
    }
}

/// Drives both engines with one identical randomized stream and asserts
/// bit-identical behaviour at every observation point.
fn differential_run(topology: Topology, seed: u64, cycles: u64) -> NetStats {
    differential_run_with(
        topology,
        seed,
        cycles,
        heterowire_interconnect::NullFaultModel,
    )
}

/// [`differential_run`] with a shared fault model: both engines must also
/// agree on every corruption draw, NACK latency, retransmission and
/// escalation.
fn differential_run_with<F: heterowire_interconnect::FaultModel + Clone>(
    topology: Topology,
    seed: u64,
    cycles: u64,
    faults: F,
) -> NetStats {
    let clusters = topology.clusters();
    let mut new_net = Network::with_faults(NetConfig::new(topology, full_link()), faults.clone());
    let mut old_net = ReferenceNetwork::with_faults(NetConfig::new(topology, full_link()), faults);
    let mut new_probe = RecProbe::default();
    let mut old_probe = RecProbe::default();
    let mut new_out: Vec<(TransferId, Transfer)> = Vec::new();
    let mut old_out: Vec<(TransferId, Transfer)> = Vec::new();
    let mut rng = SmallRng::seed_from_u64(seed);

    for cycle in 0..cycles {
        // Bursts: usually nothing, sometimes a pile-up in one cycle.
        let burst = if rng.gen_bool(0.3) {
            0
        } else if rng.gen_bool(0.85) {
            rng.gen_range(1..4usize)
        } else {
            rng.gen_range(8..25usize)
        };
        let hot_phase = (cycle / 64) % 3 == 1;
        for _ in 0..burst {
            let hot = hot_phase && rng.gen_bool(0.7);
            let t = random_transfer(&mut rng, clusters, hot);
            let id_new = new_net.send_probed(t, cycle, &mut new_probe);
            let id_old = old_net.send_probed(t, cycle, &mut old_probe);
            assert_eq!(id_new, id_old, "ids must be assigned identically");
        }
        new_net.tick_probed(cycle + 1, &mut new_probe);
        old_net.tick_probed(cycle + 1, &mut old_probe);
        // Drain at irregular intervals so wheel drains span several due
        // cycles at once (the kernel skips idle cycles the same way).
        if rng.gen_bool(0.6) {
            new_net.take_delivered_into_probed(cycle + 1, &mut new_out, &mut new_probe);
            old_net.take_delivered_into_probed(cycle + 1, &mut old_out, &mut old_probe);
            assert_eq!(new_out, old_out, "delivery sets diverged at {cycle}");
        }
        assert_eq!(
            new_net.next_event_cycle(cycle + 1),
            old_net.next_event_cycle(cycle + 1),
            "next-event answers diverged at {cycle}"
        );
        assert_eq!(new_net.pending_len(), old_net.pending_len());
        assert_eq!(new_net.inflight_len(), old_net.inflight_len());
    }
    // Final drain far in the future empties both engines.
    new_net.take_delivered_into_probed(cycles + 10_000, &mut new_out, &mut new_probe);
    old_net.take_delivered_into_probed(cycles + 10_000, &mut old_out, &mut old_probe);
    assert_eq!(new_out, old_out);

    assert_eq!(new_probe.events.len(), old_probe.events.len());
    for (i, (a, b)) in new_probe
        .events
        .iter()
        .zip(old_probe.events.iter())
        .enumerate()
    {
        assert_eq!(a, b, "probe event {i} diverged");
    }
    let (new_stats, old_stats) = (new_net.stats(), old_net.stats());
    assert_eq!(new_stats, old_stats, "NetStats diverged (incl. f64 energy)");
    assert_eq!(
        new_stats.dynamic_energy.to_bits(),
        old_stats.dynamic_energy.to_bits(),
        "energy must accrue in the same order, bit for bit"
    );
    new_stats
}

#[test]
fn crossbar4_differential_random_bursts() {
    let mut delivered = 0;
    for seed in 0..6 {
        delivered += differential_run(Topology::crossbar4(), 0x5EED_2005 + seed, 700).delivered;
    }
    assert!(delivered > 1_000, "traffic was too light to prove anything");
}

#[test]
fn hier16_differential_random_bursts() {
    let mut delivered = 0;
    for seed in 0..6 {
        delivered += differential_run(Topology::hier16(), 0xCAFE + seed, 700).delivered;
    }
    assert!(delivered > 1_000, "traffic was too light to prove anything");
}

#[test]
fn fault_injection_differential_random_bursts() {
    // Same injector on both engines: every corruption draw, NACK delay,
    // requeue order and B-escalation must agree bit for bit, and the
    // recorded fault/retransmit probe sequences must be identical. The
    // rate is high enough that retries and escalations both fire.
    let spec = FaultSpec::parse("l@2e-3+pw@5e-4+seed:99+retry:1").expect("valid spec");
    for (topology, seed) in [
        (Topology::crossbar4(), 0xFA17u64),
        (Topology::hier16(), 0xFA18),
    ] {
        let mut stats = NetStats::default();
        for s in 0..3 {
            let run = differential_run_with(topology, seed + s, 700, spec.injector());
            stats.faults_detected += run.faults_detected;
            stats.retransmits += run.retransmits;
            stats.escalations += run.escalations;
        }
        assert!(
            stats.faults_detected > 50,
            "{topology:?}: only {} faults fired — rate too low to prove parity",
            stats.faults_detected
        );
        assert!(
            stats.escalations > 0,
            "{topology:?}: retry:1 with sustained corruption must escalate"
        );
    }
}

#[test]
fn generated_topologies_differential_random_bursts() {
    // Spec-generated shapes off the two presets the indexed engine was
    // tuned on: the 2-cluster degenerate crossbar, a wide flat crossbar,
    // an asymmetric odd ring (no tie-break direction ever fires), a ring
    // with non-default hop segments, the 8-quad ring, and shapes past the
    // old 16-cluster processor cap: a 32-cluster flat crossbar, a
    // 48-cluster long-hop ring, and the capacity-edge 16-quad ring whose
    // longest route fills the inline arrays (ring:16x4, 64 clusters).
    let shapes = [
        ("xbar:2", 0xD1F0u64),
        ("xbar:8", 0xD1F1),
        ("ring:5x2", 0xD1F2),
        ("ring:3x6@hop3", 0xD1F3),
        ("ring:8x4", 0xD1F4),
        ("xbar:32", 0xD1F5),
        ("ring:12x4@hop3", 0xD1F6),
        ("ring:16x4", 0xD1F7),
    ];
    for (spec, seed) in shapes {
        let topology = TopologySpec::parse(spec)
            .unwrap_or_else(|e| panic!("{spec}: {e}"))
            .topology();
        let mut delivered = 0;
        for s in 0..2 {
            delivered += differential_run(topology, seed + s, 500).delivered;
        }
        assert!(
            delivered > 200,
            "{spec}: traffic was too light ({delivered})"
        );
    }
}

#[test]
fn transmission_line_and_scaled_latency_differential() {
    // The sensitivity-study configs change per-class latency arithmetic;
    // the cached route table must reproduce them exactly.
    for (scale, tl) in [(2.0, false), (1.0, true), (2.0, true)] {
        for topology in [Topology::crossbar4(), Topology::hier16()] {
            let mut cfg_new = NetConfig::new(topology, full_link());
            cfg_new.latency_scale = scale;
            cfg_new.transmission_line_l = tl;
            let cfg_old = cfg_new.clone();
            let mut new_net = Network::new(cfg_new);
            let mut old_net = ReferenceNetwork::new(cfg_old);
            let mut rng = SmallRng::seed_from_u64(9);
            let clusters = topology.clusters();
            let mut new_out = Vec::new();
            let mut old_out = Vec::new();
            for cycle in 0..400 {
                for _ in 0..rng.gen_range(0..3usize) {
                    let t = random_transfer(&mut rng, clusters, false);
                    new_net.send(t, cycle);
                    old_net.send(t, cycle);
                }
                new_net.tick(cycle + 1);
                old_net.tick(cycle + 1);
                new_net.take_delivered_into(cycle + 1, &mut new_out);
                old_net.take_delivered_into(cycle + 1, &mut old_out);
                assert_eq!(new_out, old_out, "scale={scale} tl={tl}");
            }
            assert_eq!(new_net.stats(), old_net.stats());
        }
    }
}

#[test]
fn starvation_pressure_holds_oldest_first_order() {
    // Continuous saturation of one route: the oldest pending transfer must
    // always depart first even while younger traffic bypasses the queue.
    for topology in [Topology::crossbar4(), Topology::hier16()] {
        let mut new_net = Network::new(NetConfig::new(topology, full_link()));
        let mut old_net = ReferenceNetwork::new(NetConfig::new(topology, full_link()));
        let mut new_out = Vec::new();
        let mut old_out = Vec::new();
        let mut rng = SmallRng::seed_from_u64(77);
        for cycle in 0..600 {
            // Three same-route B transfers per cycle into two B lanes:
            // the backlog grows without bound while L traffic interleaves.
            for _ in 0..3 {
                let t = Transfer {
                    src: Node::Cluster(0),
                    dst: Node::Cluster(1),
                    class: WireClass::B,
                    kind: MessageKind::RegisterValue,
                };
                new_net.send(t, cycle);
                old_net.send(t, cycle);
            }
            if rng.gen_bool(0.5) {
                let t = Transfer {
                    src: Node::Cluster(0),
                    dst: Node::Cluster(2 % topology.clusters()),
                    class: WireClass::L,
                    kind: MessageKind::NarrowValue,
                };
                new_net.send(t, cycle);
                old_net.send(t, cycle);
            }
            new_net.tick(cycle + 1);
            old_net.tick(cycle + 1);
            new_net.take_delivered_into(cycle + 1, &mut new_out);
            old_net.take_delivered_into(cycle + 1, &mut old_out);
            assert_eq!(new_out, old_out, "diverged at cycle {cycle}");
            assert_eq!(new_net.pending_len(), old_net.pending_len());
        }
        assert_eq!(new_net.stats(), old_net.stats());
        assert!(
            new_net.stats().queue_cycles > 10_000,
            "starvation pressure did not materialize"
        );
    }
}
