//! Scenario tests for the 16-cluster hierarchical topology: ring
//! contention, direction choice and cache placement (paper Figure 2(b)).

use heterowire_interconnect::{
    MessageKind, NetConfig, Network, Node, Topology, Transfer, TransferId,
};
use heterowire_wires::{LinkComposition, WireClass, WirePlane};

/// Test-local stand-in for the removed allocating `take_delivered`
/// convenience (production code reuses a buffer via `take_delivered_into`).
fn take_delivered(net: &mut Network, cycle: u64) -> Vec<(TransferId, Transfer)> {
    let mut out = Vec::new();
    net.take_delivered_into(cycle, &mut out);
    out
}

fn hier_net() -> Network {
    let link = LinkComposition::new(vec![WirePlane::new(WireClass::B, 72)]).unwrap();
    Network::new(NetConfig::new(Topology::hier16(), link))
}

fn send(net: &mut Network, src: usize, dst: usize, cycle: u64) {
    net.send(
        Transfer {
            src: Node::Cluster(src),
            dst: Node::Cluster(dst),
            class: WireClass::B,
            kind: MessageKind::RegisterValue,
        },
        cycle,
    );
}

#[test]
fn intra_quad_is_fast_cross_quad_is_slow() {
    let mut net = hier_net();
    send(&mut net, 4, 5, 0); // same quad (quad 1)
    send(&mut net, 6, 9, 0); // quad 1 -> quad 2, one ring hop
    let mut delivered_at = Vec::new();
    for c in 1..=12 {
        net.tick(c);
        for _ in take_delivered(&mut net, c) {
            delivered_at.push(c);
        }
    }
    // Intra-quad: crossbar 2 cycles after departing at 1 -> cycle 3.
    // Cross-quad: 2 + 1 hop x 4 = 6 after departing at 1 -> cycle 7.
    assert_eq!(delivered_at, vec![3, 7]);
}

#[test]
fn opposite_quads_use_either_direction() {
    // Quad 0 <-> quad 2 is two hops both ways; both transfers route and
    // deliver at the same latency.
    let mut net = hier_net();
    send(&mut net, 0, 8, 0);
    send(&mut net, 8, 0, 0);
    net.tick(1);
    // 2 + 2*4 = 10 -> delivered at 11.
    assert_eq!(take_delivered(&mut net, 11).len(), 2);
}

#[test]
fn ring_segment_contention_serialises() {
    // Two same-cycle transfers that share the quad0 -> quad1 ring segment
    // with only one B lane: the second must wait a cycle.
    let mut net = hier_net();
    send(&mut net, 0, 4, 0);
    send(&mut net, 1, 5, 0);
    for c in 1..20 {
        net.tick(c);
        take_delivered(&mut net, c);
    }
    assert_eq!(net.stats().queue_cycles, 1, "one transfer should queue");
}

#[test]
fn distinct_ring_directions_do_not_contend() {
    // Quad 0 -> 1 (clockwise) and quad 0 -> 3 (counter-clockwise) use
    // different directed segments.
    let mut net = hier_net();
    send(&mut net, 0, 4, 0); // q0 -> q1
    send(&mut net, 1, 12, 0); // q0 -> q3
    for c in 1..20 {
        net.tick(c);
        take_delivered(&mut net, c);
    }
    assert_eq!(net.stats().queue_cycles, 0);
}

#[test]
fn cache_traffic_from_remote_quads_crosses_the_ring() {
    let mut net = hier_net();
    // Quad 2 cluster -> cache (at quad 0): 2 ring hops.
    net.send(
        Transfer {
            src: Node::Cluster(10),
            dst: Node::Cache,
            class: WireClass::B,
            kind: MessageKind::FullAddress,
        },
        0,
    );
    net.tick(1);
    assert!(take_delivered(&mut net, 10).is_empty());
    assert_eq!(take_delivered(&mut net, 11).len(), 1);
}

#[test]
fn l_wires_halve_ring_hop_cost() {
    let link = LinkComposition::new(vec![
        WirePlane::new(WireClass::B, 72),
        WirePlane::new(WireClass::L, 18),
    ])
    .unwrap();
    let mut net = Network::new(NetConfig::new(Topology::hier16(), link));
    net.send(
        Transfer {
            src: Node::Cluster(0),
            dst: Node::Cluster(8),
            class: WireClass::L,
            kind: MessageKind::NarrowValue,
        },
        0,
    );
    net.tick(1);
    // L: crossbar 1 + 2 hops x 2 = 5 -> delivered at 6 (B would be 11).
    assert_eq!(take_delivered(&mut net, 6).len(), 1);
}

#[test]
fn energy_hops_scale_with_distance() {
    let mut near = hier_net();
    send(&mut near, 4, 5, 0);
    near.tick(1);
    let mut far = hier_net();
    send(&mut far, 0, 8, 0);
    far.tick(1);
    // Same bits, 1 vs 3 energy hops.
    assert!((far.stats().dynamic_energy / near.stats().dynamic_energy - 3.0).abs() < 1e-9);
}
