//! Randomized property-style tests over routing, arbitration and traffic
//! accounting (std-only, driven by the workspace RNG).

use heterowire_rng::SmallRng;

use heterowire_interconnect::{
    LinkId, MessageKind, NetConfig, Network, Node, Topology, TopologySpec, Transfer,
};
use heterowire_wires::{segment_latency, LinkComposition, WireClass, WirePlane};

const CASES: usize = 128;

/// Every route starts at the source's output link, ends at the
/// destination's input link, uses only links the topology declares, and
/// its latency matches the per-class segment derivation — across the
/// presets and a spread of spec-generated topologies.
#[test]
fn routes_are_well_formed() {
    let topologies: Vec<Topology> = [
        "crossbar4",
        "hier16",
        "xbar:2",
        "xbar:8",
        "ring:5x2",
        "ring:6x4",
        "ring:9x1",
        "ring:4x4@hop3@xbar2",
        // Wider than the old 16-cluster processor cap.
        "xbar:32",
        "xbar:64",
        "ring:12x4@hop3",
        "ring:16x4",
    ]
    .iter()
    .map(|s| TopologySpec::parse(s).unwrap().topology())
    .collect();
    let mut rng = SmallRng::seed_from_u64(0x10c_0001);
    for _ in 0..CASES {
        let topo = topologies[rng.gen_range(0usize..topologies.len())];
        let n = topo.clusters();
        // `n` (≡ n mod n+1) selects the cache so every node, including
        // clusters past index 15 on the wide shapes, is reachable.
        let src_i = rng.gen_range(0usize..2 * (n + 1));
        let dst_i = rng.gen_range(0usize..2 * (n + 1));
        let src = if src_i % (n + 1) == n {
            Node::Cache
        } else {
            Node::Cluster(src_i % (n + 1))
        };
        let dst = if dst_i % (n + 1) == n {
            Node::Cache
        } else {
            Node::Cluster(dst_i % (n + 1))
        };
        if src == dst {
            continue;
        }
        let class = [WireClass::Pw, WireClass::B, WireClass::L][rng.gen_range(0usize..3)];
        let route = topo.route(src, dst, class);

        let all: Vec<LinkId> = topo.all_links();
        for l in &route.links {
            assert!(all.contains(l), "route uses undeclared link {l:?}");
        }
        match src {
            Node::Cluster(c) => assert_eq!(route.links[0], LinkId::ClusterOut(c)),
            Node::Cache => assert_eq!(route.links[0], LinkId::CacheOut),
        }
        match dst {
            Node::Cluster(c) => {
                assert_eq!(*route.links.last().unwrap(), LinkId::ClusterIn(c))
            }
            Node::Cache => assert_eq!(*route.links.last().unwrap(), LinkId::CacheIn),
        }
        // Latency = the per-class segment derivation over one crossbar
        // traversal plus the topology's hop length per ring segment (for
        // default segment lengths this is exactly the Table-2 crossbar +
        // hops x ring-hop arithmetic).
        let ring_segments = route.links.len() as u64 - 2;
        assert_eq!(
            route.latency,
            segment_latency(class, topo.xbar_len())
                + segment_latency(class, topo.hop_len()) * ring_segments
        );
        assert_eq!(route.hops as u64, 1 + ring_segments);
        // Ring paths take the short way round (<= half the ring), which
        // also bounds the route by the topology's declared maximum.
        assert!(ring_segments as usize <= topo.quads() / 2);
        assert!(route.links.len() <= topo.max_route_links());
    }
}

/// Randomized spec generator: every valid (shape, dims, overrides) tuple
/// formats to a canonical string that parses back to the same topology,
/// and the spec name round-trips through [`TopologySpec::parse`].
#[test]
fn random_specs_round_trip_through_parse_and_format() {
    let mut rng = SmallRng::seed_from_u64(0x10c_0003);
    for _ in 0..256 {
        let ring = rng.gen_bool(0.5);
        let xbar_len = rng.gen_range(1u32..5);
        let hop_len = rng.gen_range(1u32..5);
        let (token, expect) = if ring {
            // Up to the 16-quad route bound, clusters capped at the
            // simulator-wide 64.
            let quads = rng.gen_range(3usize..17);
            let per_quad = rng.gen_range(1usize..=(64 / quads).min(6));
            (
                format!("ring:{quads}x{per_quad}@hop{hop_len}@xbar{xbar_len}"),
                Topology::hier_ring(quads, per_quad).with_segment_lengths(xbar_len, hop_len),
            )
        } else {
            let clusters = rng.gen_range(2usize..65);
            (
                format!("xbar:{clusters}@xbar{xbar_len}"),
                Topology::crossbar(clusters).with_segment_lengths(xbar_len, hop_len),
            )
        };
        let spec = TopologySpec::parse(&token).unwrap_or_else(|e| panic!("{token}: {e}"));
        assert_eq!(spec.topology(), expect, "{token}");
        // name() is canonical and re-parses to the identical spec.
        let name = spec.name();
        let reparsed = TopologySpec::parse(&name).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(reparsed, spec, "{token} -> {name}");
        // The generated topology survives a Network construction (route
        // tables, link slots and capacity checks all hold).
        let link = LinkComposition::new(vec![WirePlane::new(WireClass::B, 72)]).unwrap();
        let _ = Network::new(NetConfig::new(spec.topology(), link));
    }
}

/// Conservation: every sent transfer is eventually delivered exactly once,
/// regardless of contention.
#[test]
fn transfers_are_conserved() {
    let mut rng = SmallRng::seed_from_u64(0x10c_0002);
    for _ in 0..32 {
        let n = rng.gen_range(1usize..60);
        let link = LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 72),
            WirePlane::new(WireClass::L, 18),
        ])
        .unwrap();
        let mut net = Network::new(NetConfig::new(Topology::crossbar4(), link));
        let mut sent = 0u64;
        for i in 0..n {
            let src = rng.gen_range(0usize..4);
            let dst = rng.gen_range(0usize..4);
            if src == dst {
                continue;
            }
            net.send(
                Transfer {
                    src: Node::Cluster(src),
                    dst: Node::Cluster(dst),
                    class: if i % 3 == 0 {
                        WireClass::L
                    } else {
                        WireClass::B
                    },
                    kind: if i % 3 == 0 {
                        MessageKind::NarrowValue
                    } else {
                        MessageKind::RegisterValue
                    },
                },
                0,
            );
            sent += 1;
        }
        let mut delivered = 0u64;
        let mut buf = Vec::new();
        for cycle in 1..1_000 {
            net.tick(cycle);
            net.take_delivered_into(cycle, &mut buf);
            delivered += buf.len() as u64;
            if delivered == sent {
                break;
            }
        }
        assert_eq!(delivered, sent);
        assert_eq!(net.inflight_len(), 0);
        assert_eq!(net.stats().delivered, sent);
    }
}

/// Dynamic energy accounting: total equals the sum over classes of
/// bit-hops x relative dynamic energy.
#[test]
fn energy_is_sum_of_weighted_bit_hops() {
    let mut rng = SmallRng::seed_from_u64(0x10c_0003);
    for _ in 0..32 {
        let n_b = rng.gen_range(0u32..20);
        let n_l = rng.gen_range(0u32..20);
        let link = LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 144),
            WirePlane::new(WireClass::L, 36),
        ])
        .unwrap();
        let mut net = Network::new(NetConfig::new(Topology::crossbar4(), link));
        for i in 0..n_b {
            net.send(
                Transfer {
                    src: Node::Cluster((i % 4) as usize),
                    dst: Node::Cache,
                    class: WireClass::B,
                    kind: MessageKind::RegisterValue,
                },
                i as u64,
            );
        }
        for i in 0..n_l {
            net.send(
                Transfer {
                    src: Node::Cluster((i % 4) as usize),
                    dst: Node::Cache,
                    class: WireClass::L,
                    kind: MessageKind::NarrowValue,
                },
                i as u64,
            );
        }
        let mut buf = Vec::new();
        for cycle in 1..500 {
            net.tick(cycle);
            net.take_delivered_into(cycle, &mut buf);
        }
        let s = net.stats();
        let expect: f64 = s.bit_hops[2] as f64 * WireClass::B.params().relative_dynamic
            + s.bit_hops[3] as f64 * WireClass::L.params().relative_dynamic;
        assert!((s.dynamic_energy - expect).abs() < 1e-6);
        assert_eq!(s.bit_hops[2], n_b as u64 * 72);
        assert_eq!(s.bit_hops[3], n_l as u64 * 18);
    }
}
