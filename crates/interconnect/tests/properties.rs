//! Randomized property-style tests over routing, arbitration and traffic
//! accounting (std-only, driven by the workspace RNG).

use heterowire_rng::SmallRng;

use heterowire_interconnect::{LinkId, MessageKind, NetConfig, Network, Node, Topology, Transfer};
use heterowire_wires::{LinkComposition, WireClass, WirePlane};

const CASES: usize = 128;

/// Every route starts at the source's output link, ends at the
/// destination's input link, uses only links the topology declares, and
/// its latency matches the class parameters.
#[test]
fn routes_are_well_formed() {
    let mut rng = SmallRng::seed_from_u64(0x10c_0001);
    for _ in 0..CASES {
        let topo = if rng.gen_bool(0.5) {
            Topology::hier16()
        } else {
            Topology::crossbar4()
        };
        let n = topo.clusters();
        let src_i = rng.gen_range(0usize..16);
        let dst_i = rng.gen_range(0usize..16);
        let src = if src_i % (n + 1) == n {
            Node::Cache
        } else {
            Node::Cluster(src_i % (n + 1))
        };
        let dst = if dst_i % (n + 1) == n {
            Node::Cache
        } else {
            Node::Cluster(dst_i % (n + 1))
        };
        if src == dst {
            continue;
        }
        let class = [WireClass::Pw, WireClass::B, WireClass::L][rng.gen_range(0usize..3)];
        let route = topo.route(src, dst, class);

        let all: Vec<LinkId> = topo.all_links();
        for l in &route.links {
            assert!(all.contains(l), "route uses undeclared link {l:?}");
        }
        match src {
            Node::Cluster(c) => assert_eq!(route.links[0], LinkId::ClusterOut(c)),
            Node::Cache => assert_eq!(route.links[0], LinkId::CacheOut),
        }
        match dst {
            Node::Cluster(c) => {
                assert_eq!(*route.links.last().unwrap(), LinkId::ClusterIn(c))
            }
            Node::Cache => assert_eq!(*route.links.last().unwrap(), LinkId::CacheIn),
        }
        // Latency = crossbar + hops * ring-hop for the class.
        let p = class.params();
        let ring_segments = route.links.len() as u64 - 2;
        assert_eq!(
            route.latency,
            p.crossbar_latency as u64 + p.ring_hop_latency as u64 * ring_segments
        );
        assert_eq!(route.hops as u64, 1 + ring_segments);
        // Ring paths take the short way round (<= half the ring).
        assert!(ring_segments <= 2);
    }
}

/// Conservation: every sent transfer is eventually delivered exactly once,
/// regardless of contention.
#[test]
fn transfers_are_conserved() {
    let mut rng = SmallRng::seed_from_u64(0x10c_0002);
    for _ in 0..32 {
        let n = rng.gen_range(1usize..60);
        let link = LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 72),
            WirePlane::new(WireClass::L, 18),
        ])
        .unwrap();
        let mut net = Network::new(NetConfig::new(Topology::crossbar4(), link));
        let mut sent = 0u64;
        for i in 0..n {
            let src = rng.gen_range(0usize..4);
            let dst = rng.gen_range(0usize..4);
            if src == dst {
                continue;
            }
            net.send(
                Transfer {
                    src: Node::Cluster(src),
                    dst: Node::Cluster(dst),
                    class: if i % 3 == 0 {
                        WireClass::L
                    } else {
                        WireClass::B
                    },
                    kind: if i % 3 == 0 {
                        MessageKind::NarrowValue
                    } else {
                        MessageKind::RegisterValue
                    },
                },
                0,
            );
            sent += 1;
        }
        let mut delivered = 0u64;
        let mut buf = Vec::new();
        for cycle in 1..1_000 {
            net.tick(cycle);
            net.take_delivered_into(cycle, &mut buf);
            delivered += buf.len() as u64;
            if delivered == sent {
                break;
            }
        }
        assert_eq!(delivered, sent);
        assert_eq!(net.inflight_len(), 0);
        assert_eq!(net.stats().delivered, sent);
    }
}

/// Dynamic energy accounting: total equals the sum over classes of
/// bit-hops x relative dynamic energy.
#[test]
fn energy_is_sum_of_weighted_bit_hops() {
    let mut rng = SmallRng::seed_from_u64(0x10c_0003);
    for _ in 0..32 {
        let n_b = rng.gen_range(0u32..20);
        let n_l = rng.gen_range(0u32..20);
        let link = LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 144),
            WirePlane::new(WireClass::L, 36),
        ])
        .unwrap();
        let mut net = Network::new(NetConfig::new(Topology::crossbar4(), link));
        for i in 0..n_b {
            net.send(
                Transfer {
                    src: Node::Cluster((i % 4) as usize),
                    dst: Node::Cache,
                    class: WireClass::B,
                    kind: MessageKind::RegisterValue,
                },
                i as u64,
            );
        }
        for i in 0..n_l {
            net.send(
                Transfer {
                    src: Node::Cluster((i % 4) as usize),
                    dst: Node::Cache,
                    class: WireClass::L,
                    kind: MessageKind::NarrowValue,
                },
                i as u64,
            );
        }
        let mut buf = Vec::new();
        for cycle in 1..500 {
            net.tick(cycle);
            net.take_delivered_into(cycle, &mut buf);
        }
        let s = net.stats();
        let expect: f64 = s.bit_hops[2] as f64 * WireClass::B.params().relative_dynamic
            + s.bit_hops[3] as f64 * WireClass::L.params().relative_dynamic;
        assert!((s.dynamic_energy - expect).abs() < 1e-6);
        assert_eq!(s.bit_hops[2], n_b as u64 * 72);
        assert_eq!(s.bit_hops[3], n_l as u64 * 18);
    }
}
